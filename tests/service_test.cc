// Differential proof for the streaming FleetService: for every mappable
// corpus algorithm × shard counts {1,2,4,8} × burst patterns (steady,
// Zipf-hot-flow, single-flow flood), the flushed service egress, merged to
// arrival order, is bit-identical to sequential Machine::process — one
// pristine sequential replica per state slot, fed the same packets in the
// same order (and literally one single machine when the service runs with
// one slot, or when no flows alias in state).  Also pins the lifecycle
// contracts: stop/start persistence, flush on an empty service, DropTail
// drop accounting (delivered + dropped == ingested), and the
// snapshot → reshard → restore cycle.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "banzai/service.h"
#include "sim/partition.h"
#include "test_util.h"

namespace {

using algorithms::AlgorithmInfo;
using banzai::Backpressure;
using banzai::FieldId;
using banzai::FleetService;
using banzai::Packet;
using banzai::ServiceConfig;

enum class Burst { kSteady, kZipfHot, kSingleFlow };

const char* burst_name(Burst b) {
  switch (b) {
    case Burst::kSteady: return "steady";
    case Burst::kZipfHot: return "zipf_hot";
    case Burst::kSingleFlow: return "single_flow_flood";
  }
  return "?";
}

// The algorithm's seeded workload with the flow-key field re-shaped by the
// burst pattern, so the trace exercises the slot/shard routing the way the
// pattern dictates.  The reference sees the identical packets, so re-shaping
// never weakens the differential.
std::vector<Packet> make_trace(const AlgorithmInfo& alg,
                               const banzai::Machine& machine,
                               FieldId flow_field, Burst burst,
                               int num_packets, unsigned seed) {
  std::mt19937 rng(seed);
  std::mt19937 flow_rng(seed ^ 0x9e3779b9u);
  std::uniform_int_distribution<int> hot_coin(0, 9);
  std::uniform_int_distribution<int> cold(1, 15);
  std::vector<Packet> trace;
  trace.reserve(static_cast<std::size_t>(num_packets));
  for (int i = 0; i < num_packets; ++i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng, i, fields);
    Packet pkt(machine.fields().size());
    for (const auto& [k, v] : fields)
      if (machine.fields().try_id_of(k).has_value())
        pkt.set(machine.fields().id_of(k), v);
    int flow = 0;
    switch (burst) {
      case Burst::kSteady: flow = i % 16; break;
      case Burst::kZipfHot:
        flow = hot_coin(flow_rng) < 7 ? 0 : cold(flow_rng);
        break;
      case Burst::kSingleFlow: flow = 0; break;
    }
    pkt.set(flow_field, 1000 + flow);
    trace.push_back(std::move(pkt));
  }
  return trace;
}

// The sequential reference at slot granularity: one pristine Machine::process
// replica per slot, fed each packet in arrival order.  The slot mapping is an
// independent re-derivation of ShardCore's (pinned by partition_test), so the
// service cannot agree with the reference by sharing a buggy hash path.
struct SlotReference {
  std::vector<banzai::Machine> slots;
  std::vector<FieldId> key;

  SlotReference(const banzai::Machine& prototype, std::size_t num_slots,
                std::vector<FieldId> flow_key)
      : key(std::move(flow_key)) {
    slots.reserve(num_slots);
    for (std::size_t v = 0; v < num_slots; ++v)
      slots.push_back(prototype.clone());
  }

  std::size_t slot_of(const Packet& pkt) const {
    if (slots.size() <= 1) return 0;
    std::uint64_t h = 0;
    for (FieldId f : key)
      h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(pkt.get(f))));
    return static_cast<std::size_t>(h % slots.size());
  }

  Packet process(const Packet& pkt) { return slots[slot_of(pkt)].process(pkt); }

  std::vector<Packet> process_all(const std::vector<Packet>& trace) {
    std::vector<Packet> out;
    out.reserve(trace.size());
    for (const Packet& p : trace) out.push_back(process(p));
    return out;
  }
};

struct CompiledAlg {
  domino::CompileResult compiled;
  FieldId flow_field;

  explicit CompiledAlg(const std::string& name)
      : compiled(domino::compile(
            algorithms::algorithm(name).source,
            *test_util::least_target(algorithms::algorithm(name).source))),
        flow_field(compiled.machine().fields().id_of(
            algorithms::algorithm(name).input_fields[0])) {}

  const banzai::Machine& machine() { return compiled.machine(); }

  ServiceConfig service_config(std::size_t shards, std::size_t slots) const {
    ServiceConfig cfg;
    cfg.num_shards = shards;
    cfg.num_slots = slots;
    cfg.batch_size = 64;
    cfg.ring_capacity = 256;
    cfg.backpressure = Backpressure::kBlock;
    cfg.flow_key = {flow_field};
    return cfg;
  }
};

class ServiceDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServiceDifferentialTest, EgressBitIdenticalToSequentialReference) {
  const AlgorithmInfo& alg = algorithms::algorithm(GetParam());
  CompiledAlg ca(alg.name);
  const std::size_t kSlots = 8;

  unsigned seed = 100;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    for (Burst burst :
         {Burst::kSteady, Burst::kZipfHot, Burst::kSingleFlow}) {
      SCOPED_TRACE(std::string(burst_name(burst)) + ", " +
                   std::to_string(shards) + " shards");
      const auto trace =
          make_trace(alg, ca.machine(), ca.flow_field, burst, 800, ++seed);
      SlotReference ref(ca.machine(), kSlots, {ca.flow_field});
      const auto expected = ref.process_all(trace);

      FleetService svc(ca.machine(), ca.service_config(shards, kSlots));
      svc.start();
      ASSERT_EQ(svc.ingest_all(trace), trace.size());
      svc.flush();
      const auto egress = svc.drain_egress();
      svc.stop();

      ASSERT_EQ(egress.size(), expected.size());
      for (std::size_t i = 0; i < egress.size(); ++i)
        ASSERT_EQ(egress[i], expected[i]) << "packet " << i;
      for (std::size_t v = 0; v < kSlots; ++v)
        EXPECT_EQ(svc.slot_machine(v).state(), ref.slots[v].state())
            << "slot " << v;

      const auto st = svc.stats();
      EXPECT_EQ(st.ingested, trace.size());
      EXPECT_EQ(st.delivered, trace.size());
      EXPECT_EQ(st.dropped, 0u);
      EXPECT_EQ(st.queue_depth.size(), shards);
      EXPECT_GT(st.avg_latency_ticks, 0.0);
    }
  }
}

// The literal single-machine form of the acceptance criterion: with one slot
// there is exactly one StateStore, and the service must reproduce sequential
// Machine::process on the full trace bit for bit.
TEST_P(ServiceDifferentialTest, SingleSlotServiceMatchesOneSequentialMachine) {
  const AlgorithmInfo& alg = algorithms::algorithm(GetParam());
  CompiledAlg ca(alg.name);

  const auto trace =
      make_trace(alg, ca.machine(), ca.flow_field, Burst::kZipfHot, 1000, 7u);
  banzai::Machine single = ca.machine().clone();
  std::vector<Packet> expected;
  expected.reserve(trace.size());
  for (const Packet& p : trace) expected.push_back(single.process(p));

  FleetService svc(ca.machine(), ca.service_config(1, 1));
  svc.start();
  ASSERT_EQ(svc.ingest_all(trace), trace.size());
  svc.flush();
  const auto egress = svc.drain_egress();
  svc.stop();

  ASSERT_EQ(egress.size(), expected.size());
  for (std::size_t i = 0; i < egress.size(); ++i)
    ASSERT_EQ(egress[i], expected[i]) << "packet " << i;
  EXPECT_EQ(svc.slot_machine(0).state(), single.state());
}

// Acceptance criterion, elastic form: a service drained, snapshotted,
// resharded to a different worker count, restored and resumed must stay
// bit-identical to the sequential reference across the whole stream.
TEST_P(ServiceDifferentialTest, ReshardCyclePreservesEquivalence) {
  const AlgorithmInfo& alg = algorithms::algorithm(GetParam());
  CompiledAlg ca(alg.name);
  const std::size_t kSlots = 8;

  struct Move { std::size_t from, to; };
  unsigned seed = 900;
  for (Move mv : {Move{1, 4}, Move{4, 2}, Move{2, 8}}) {
    SCOPED_TRACE(std::to_string(mv.from) + " -> " + std::to_string(mv.to) +
                 " shards");
    const auto trace = make_trace(alg, ca.machine(), ca.flow_field,
                                  Burst::kZipfHot, 1200, ++seed);
    SlotReference ref(ca.machine(), kSlots, {ca.flow_field});
    const auto expected = ref.process_all(trace);
    const std::size_t half = trace.size() / 2;

    FleetService before(ca.machine(), ca.service_config(mv.from, kSlots));
    before.start();
    for (std::size_t i = 0; i < half; ++i) ASSERT_TRUE(before.ingest(trace[i]));
    before.stop();  // stop() drains: all accepted packets processed
    auto egress = before.drain_egress();
    const auto snap = before.snapshot();

    FleetService after(ca.machine(), ca.service_config(mv.to, kSlots));
    after.restore(snap);
    after.start();
    for (std::size_t i = half; i < trace.size(); ++i)
      ASSERT_TRUE(after.ingest(trace[i]));
    after.flush();
    const auto tail = after.drain_egress();
    after.stop();

    egress.insert(egress.end(), tail.begin(), tail.end());
    ASSERT_EQ(egress.size(), expected.size());
    for (std::size_t i = 0; i < egress.size(); ++i)
      ASSERT_EQ(egress[i], expected[i]) << "packet " << i;
    for (std::size_t v = 0; v < kSlots; ++v)
      EXPECT_EQ(after.slot_machine(v).state(), ref.slots[v].state())
          << "slot " << v;
  }
}

std::vector<std::string> mappable_corpus() {
  std::vector<std::string> names;
  for (const auto& alg : algorithms::corpus())
    if (alg.paper_least_atom != "Doesn't map") names.push_back(alg.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ServiceDifferentialTest,
                         ::testing::ValuesIn(mappable_corpus()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Lifecycle and loss contracts (flowlets as the worked example).
// ---------------------------------------------------------------------------

TEST(ServiceLifecycleTest, StopStartPersistsStateLikeOneContinuousRun) {
  CompiledAlg ca("flowlets");
  const auto& alg = algorithms::algorithm("flowlets");
  const auto trace =
      make_trace(alg, ca.machine(), ca.flow_field, Burst::kSteady, 1000, 21u);
  const std::size_t half = trace.size() / 2;

  FleetService split(ca.machine(), ca.service_config(4, 8));
  split.start();
  for (std::size_t i = 0; i < half; ++i) ASSERT_TRUE(split.ingest(trace[i]));
  split.stop();
  split.start();  // the switch comes back up; per-flow state survives
  for (std::size_t i = half; i < trace.size(); ++i)
    ASSERT_TRUE(split.ingest(trace[i]));
  split.stop();

  FleetService continuous(ca.machine(), ca.service_config(4, 8));
  continuous.start();
  ASSERT_EQ(continuous.ingest_all(trace), trace.size());
  continuous.stop();

  ASSERT_EQ(split.drain_egress(), continuous.drain_egress());
  for (std::size_t v = 0; v < 8; ++v)
    EXPECT_EQ(split.slot_machine(v).state(), continuous.slot_machine(v).state())
        << "slot " << v;
}

TEST(ServiceLifecycleTest, FlushOnEmptyServiceReturnsImmediately) {
  CompiledAlg ca("flowlets");
  FleetService svc(ca.machine(), ca.service_config(2, 8));
  svc.start();
  svc.flush();
  svc.flush();  // repeated flush with nothing in flight is a no-op
  EXPECT_TRUE(svc.drain_egress().empty());
  const auto st = svc.stats();
  EXPECT_EQ(st.ingested, 0u);
  EXPECT_EQ(st.delivered, 0u);
  EXPECT_EQ(st.dropped, 0u);
  svc.stop();
  // A stopped, fully drained service may also flush (nothing outstanding).
  svc.flush();
}

TEST(ServiceLifecycleTest, IngestRequiresRunningService) {
  CompiledAlg ca("flowlets");
  FleetService svc(ca.machine(), ca.service_config(2, 8));
  Packet pkt(ca.machine().fields().size());
  EXPECT_THROW(svc.ingest(pkt), std::logic_error);
  svc.start();
  EXPECT_TRUE(svc.ingest(pkt));
  svc.stop();
  EXPECT_THROW(svc.ingest(pkt), std::logic_error);
}

TEST(ServiceLifecycleTest, SnapshotAndRestoreRequireStoppedService) {
  CompiledAlg ca("flowlets");
  FleetService svc(ca.machine(), ca.service_config(2, 8));
  svc.start();
  EXPECT_THROW(svc.snapshot(), std::logic_error);
  svc.stop();
  const auto snap = svc.snapshot();
  svc.start();
  EXPECT_THROW(svc.restore(snap), std::logic_error);
  svc.stop();
  EXPECT_NO_THROW(svc.restore(snap));

  // Slot count is the migration contract: a snapshot from a different slot
  // count must be rejected, shard count may differ freely.
  FleetService other_slots(ca.machine(), ca.service_config(2, 4));
  EXPECT_THROW(other_slots.restore(snap), std::invalid_argument);
  FleetService other_shards(ca.machine(), ca.service_config(8, 8));
  EXPECT_NO_THROW(other_shards.restore(snap));

  // A rejected restore is a no-op, not a wound: the refusing service still
  // starts and processes as if the bad snapshot never arrived.
  other_slots.start();
  Packet pkt(ca.machine().fields().size());
  EXPECT_TRUE(other_slots.ingest(pkt));
  other_slots.flush();
  EXPECT_EQ(other_slots.drain_egress().size(), 1u);
  EXPECT_EQ(other_slots.stats().delivered, 1u);
  other_slots.stop();

  // Same slot count but a truncated slot_state vector must also reject:
  // shape is (num_slots, per-slot stores), not just the header.
  banzai::ServiceSnapshot truncated = snap;
  truncated.slot_state.pop_back();
  FleetService same_slots(ca.machine(), ca.service_config(2, 8));
  EXPECT_THROW(same_slots.restore(truncated), std::invalid_argument);
}

TEST(ServiceLifecycleTest, ServiceRequiresEnoughSlotsAndAFlowKey) {
  CompiledAlg ca("flowlets");
  ServiceConfig cfg = ca.service_config(4, 2);  // fewer slots than shards
  EXPECT_THROW(FleetService(ca.machine(), cfg), std::invalid_argument);
  cfg = ca.service_config(4, 8);
  cfg.flow_key.clear();
  EXPECT_THROW(FleetService(ca.machine(), cfg), std::invalid_argument);
}

TEST(ServiceBackpressureTest, DropTailAccountsForEveryOfferedPacket) {
  CompiledAlg ca("flowlets");
  const auto& alg = algorithms::algorithm("flowlets");
  // Single-flow flood into a deliberately tiny ring: the first scenario class
  // where the system may lose packets.
  const auto trace = make_trace(alg, ca.machine(), ca.flow_field,
                                Burst::kSingleFlow, 20000, 33u);
  ServiceConfig cfg = ca.service_config(4, 8);
  cfg.ring_capacity = 8;
  cfg.batch_size = 8;
  cfg.backpressure = Backpressure::kDropTail;

  FleetService svc(ca.machine(), cfg);
  svc.start();
  std::vector<Packet> accepted;
  for (const Packet& p : trace)
    if (svc.ingest(p)) accepted.push_back(p);
  svc.flush();
  const auto egress = svc.drain_egress();
  svc.stop();

  const auto st = svc.stats();
  EXPECT_EQ(st.ingested, trace.size());
  EXPECT_EQ(st.delivered + st.dropped, st.ingested);
  EXPECT_EQ(st.delivered, accepted.size());
  // A 20000-packet flood through an 8-slot ring must shed: ingest is orders
  // of magnitude cheaper than pipeline execution.
  EXPECT_GT(st.dropped, 0u);

  // Delivered packets are exactly the accepted ones, processed in order —
  // drops shed load, they never corrupt the survivors.
  SlotReference ref(ca.machine(), 8, {ca.flow_field});
  const auto expected = ref.process_all(accepted);
  ASSERT_EQ(egress.size(), expected.size());
  for (std::size_t i = 0; i < egress.size(); ++i)
    ASSERT_EQ(egress[i], expected[i]) << "packet " << i;
}

// Full-trace equivalence against ONE sequential machine over the whole trace,
// in the style of fleet_test: valid whenever no two flows alias in state, a
// precondition the test asserts rather than assumes.
TEST(ServiceFullTraceTest, MatchesSingleMachineWhenFlowsDoNotAlias) {
  CompiledAlg ca("flowlets");
  const auto& ft = ca.machine().fields();
  const FieldId f_sport = ft.id_of("sport");
  const FieldId f_dport = ft.id_of("dport");
  const FieldId f_arrival = ft.id_of("arrival");
  const auto& out_map = ca.compiled.output_map();
  const FieldId f_id =
      ft.id_of(out_map.count("id") ? out_map.at("id") : "id");

  netsim::FlowTraceConfig tcfg;
  tcfg.num_packets = 5000;
  tcfg.num_flows = 30;
  tcfg.zipf_skew = 1.1;
  tcfg.seed = 5;
  std::vector<Packet> trace;
  for (const auto& tp : netsim::generate_flow_trace(tcfg)) {
    Packet p(ft.size());
    p.set(f_sport, 1000 + tp.flow_id);
    p.set(f_dport, 80);
    p.set(f_arrival, static_cast<banzai::Value>(tp.arrival));
    trace.push_back(std::move(p));
  }

  banzai::Machine single = ca.machine().clone();
  std::vector<Packet> expected;
  expected.reserve(trace.size());
  for (const Packet& p : trace) expected.push_back(single.process(p));

  // Precondition: distinct flows occupy distinct flowlet-table entries.
  std::map<banzai::Value, std::set<banzai::Value>> id_to_flows;
  for (std::size_t i = 0; i < trace.size(); ++i)
    id_to_flows[expected[i].get(f_id)].insert(trace[i].get(f_sport));
  for (const auto& [id, flows] : id_to_flows)
    ASSERT_EQ(flows.size(), 1u) << "flowlet slot " << id << " is shared";

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    ServiceConfig cfg;
    cfg.num_shards = shards;
    cfg.num_slots = 8;
    cfg.batch_size = 128;
    cfg.ring_capacity = 512;
    cfg.flow_key = {f_sport, f_dport};
    FleetService svc(ca.machine(), cfg);
    svc.start();
    ASSERT_EQ(svc.ingest_all(trace), trace.size());
    svc.flush();
    const auto egress = svc.drain_egress();
    svc.stop();
    ASSERT_EQ(egress.size(), expected.size());
    for (std::size_t i = 0; i < egress.size(); ++i)
      ASSERT_EQ(egress[i], expected[i]) << "packet " << i;
  }
}

}  // namespace
