// The wire-format front end (src/wire/): the header-spec DSL, the bound
// parse/deparse codec and its hardening contract, the pcap reader/writer,
// and the two differential axes the tentpole demands — every corpus
// algorithm round-trips bytes -> fields -> bytes bit-exactly against the
// direct field-vector path, both standalone and through the FleetService
// byte-stream ingest.  The malformed-input sweep lives in wire_fuzz_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/service.h"
#include "core/compiler.h"
#include "sim/partition.h"
#include "test_util.h"
#include "wire/codec.h"
#include "wire/pcap.h"

namespace {

using banzai::Packet;
using wire::Endian;
using wire::ParseStatus;
using wire::Sign;
using wire::WireCodec;
using wire::WireSpec;

constexpr char kDemoSpec[] = R"(
# a comment
wire demo_v1 {
  magic : u16 be @0 = 0xD0FF;
  big   : u32 be @2;
  little: u32 le @6;
  s8    : i8  be @10;
  s16   : i16 be @11;
  tail  : u8  be @13;
}
)";

banzai::FieldTable demo_table() {
  banzai::FieldTable ft;
  for (const char* n : {"big", "little", "s8", "s16", "tail"}) ft.intern(n);
  return ft;
}

// ---- spec DSL --------------------------------------------------------------

TEST(WireSpecTest, ParsesTheDocumentedGrammar) {
  const WireSpec spec = wire::parse_wire_spec(kDemoSpec);
  EXPECT_EQ(spec.name, "demo_v1");
  ASSERT_EQ(spec.fields.size(), 6u);
  EXPECT_EQ(spec.header_bytes, 14u);

  const wire::WireField* magic = spec.find("magic");
  ASSERT_NE(magic, nullptr);
  EXPECT_TRUE(magic->has_expect);
  EXPECT_EQ(magic->expect, 0xD0FFu);
  EXPECT_EQ(magic->width, 2u);
  EXPECT_EQ(magic->offset, 0u);

  const wire::WireField* little = spec.find("little");
  ASSERT_NE(little, nullptr);
  EXPECT_EQ(little->endian, Endian::kLittle);
  EXPECT_EQ(little->width, 4u);
  EXPECT_FALSE(little->has_expect);

  const wire::WireField* s16 = spec.find("s16");
  ASSERT_NE(s16, nullptr);
  EXPECT_EQ(s16->sign, Sign::kSigned);
  EXPECT_EQ(spec.find("nope"), nullptr);
}

TEST(WireSpecTest, MalformedSpecsThrowWithALineNumber) {
  const char* bad[] = {
      "",                                          // empty
      "wire x { }",                                // no fields
      "wire x { a : u16 @0 }",                     // missing semicolon
      "wire x { a : u64 @0; }",                    // unknown type
      "wire x { a : u16 @0; a : u16 @2; }",        // duplicate name
      "wire x { a : u16 @0; b : u16 @1; }",        // overlapping ranges
      "wire x { a : u8 @0 = 0x1ff; }",             // const exceeds width
      "wire x { a : u16; }",                       // missing offset
      "wire x { a : u16 @0; } trailing",           // trailing tokens
      "header x { a : u16 @0; }",                  // wrong keyword
      "wire x { a : u16 xx @0; }",                 // bad endian token
      "wire x { a : u32 @0x10000; }",              // beyond the 64KiB bound
  };
  for (const char* text : bad)
    EXPECT_THROW(wire::parse_wire_spec(text), wire::WireSpecError) << text;
  // The error carries the offending 1-based line.
  try {
    wire::parse_wire_spec("wire x {\n  a : u16 @0;\n  b : u64 @2;\n}");
    FAIL() << "u64 must be rejected";
  } catch (const wire::WireSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// ---- codec golden bytes ----------------------------------------------------

TEST(WireCodecTest, DeparseEmitsGoldenBytesBothEndians) {
  const banzai::FieldTable ft = demo_table();
  const WireCodec codec(wire::parse_wire_spec(kDemoSpec), ft);
  Packet p(ft.size());
  p.set(ft.id_of("big"), 0x01020304);
  p.set(ft.id_of("little"), 0x0A0B0C0D);
  p.set(ft.id_of("s8"), -2);
  p.set(ft.id_of("s16"), -3);
  p.set(ft.id_of("tail"), 0x7E);
  const std::vector<std::uint8_t> want = {
      0xD0, 0xFF,              // magic, network order
      0x01, 0x02, 0x03, 0x04,  // big, network order
      0x0D, 0x0C, 0x0B, 0x0A,  // little, little-endian
      0xFE,                    // s8 = -2, low byte
      0xFF, 0xFD,              // s16 = -3, network order
      0x7E};
  EXPECT_EQ(codec.deparse(p), want);
}

TEST(WireCodecTest, ParseRecoversFieldsAndSignExtends) {
  const banzai::FieldTable ft = demo_table();
  const WireCodec codec(wire::parse_wire_spec(kDemoSpec), ft);
  const std::vector<std::uint8_t> frame = {0xD0, 0xFF, 0x01, 0x02, 0x03,
                                           0x04, 0x0D, 0x0C, 0x0B, 0x0A,
                                           0xFE, 0xFF, 0xFD, 0x7E};
  Packet p(ft.size());
  const auto r = codec.parse(frame.data(), frame.size(), p);
  ASSERT_TRUE(r.ok()) << wire::to_string(r.status);
  EXPECT_EQ(r.header_bytes, 14u);
  EXPECT_EQ(p.get(ft.id_of("big")), 0x01020304);
  EXPECT_EQ(p.get(ft.id_of("little")), 0x0A0B0C0D);
  EXPECT_EQ(p.get(ft.id_of("s8")), -2) << "i8 must sign-extend";
  EXPECT_EQ(p.get(ft.id_of("s16")), -3) << "i16 must sign-extend";
  EXPECT_EQ(p.get(ft.id_of("tail")), 0x7E);
}

TEST(WireCodecTest, RejectedFramesNeverPartiallyWriteThePacket) {
  const banzai::FieldTable ft = demo_table();
  const WireCodec codec(wire::parse_wire_spec(kDemoSpec), ft);
  Packet pristine(ft.size());
  for (std::size_t i = 0; i < ft.size(); ++i)
    pristine.set(i, static_cast<banzai::Value>(0x5A5A0000 + i));

  // Truncated: one byte short of the header.
  std::vector<std::uint8_t> frame(codec.header_bytes() - 1, 0xAB);
  Packet p = pristine;
  EXPECT_EQ(codec.parse(frame.data(), frame.size(), p).status,
            ParseStatus::kTruncated);
  EXPECT_EQ(p, pristine);

  // Bad magic on an otherwise complete frame: checks run before any store.
  frame.assign(codec.header_bytes(), 0);
  frame[0] = 0xDE;
  frame[1] = 0xAD;
  p = pristine;
  const auto r = codec.parse(frame.data(), frame.size(), p);
  EXPECT_EQ(r.status, ParseStatus::kBadValue);
  EXPECT_EQ(r.field, "magic");
  EXPECT_EQ(p, pristine);

  // Oversized: beyond max_frame_bytes for parse, any trailing byte for
  // parse_exact.
  frame.assign(codec.max_frame_bytes() + 1, 0);
  p = pristine;
  EXPECT_EQ(codec.parse(frame.data(), frame.size(), p).status,
            ParseStatus::kOversized);
  EXPECT_EQ(p, pristine);
  frame.assign(codec.header_bytes() + 1, 0);
  frame[0] = 0xD0;
  frame[1] = 0xFF;
  p = pristine;
  EXPECT_EQ(codec.parse_exact(frame.data(), frame.size(), p).status,
            ParseStatus::kOversized);
  EXPECT_EQ(p, pristine);
}

TEST(WireCodecTest, ParseToleratesPayloadUpToMaxExactDoesNot) {
  const banzai::FieldTable ft = demo_table();
  const WireCodec codec(wire::parse_wire_spec(kDemoSpec), ft);
  std::vector<std::uint8_t> frame(codec.header_bytes() + 100, 0x77);
  frame[0] = 0xD0;
  frame[1] = 0xFF;
  Packet p(ft.size());
  const auto r = codec.parse(frame.data(), frame.size(), p);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.header_bytes, codec.header_bytes())
      << "payload starts where the header ends";
  EXPECT_EQ(codec.parse_exact(frame.data(), frame.size(), p).status,
            ParseStatus::kOversized);
}

TEST(WireCodecTest, BindingIsStrictAndRenamable) {
  banzai::FieldTable ft;
  ft.intern("machine_big");
  // Unresolvable non-const field: refused at bind time, not at parse time.
  EXPECT_THROW(WireCodec(wire::parse_wire_spec(
                             "wire w { ghost : u16 @0; }"),
                         ft),
               wire::WireBindError);
  // A const-checked field needs no table entry (check-only)…
  EXPECT_NO_THROW(WireCodec(
      wire::parse_wire_spec("wire w { v : u16 @0 = 1; }"), ft));
  // …and a rename map redirects wire names onto table names, the egress
  // output_map() hook.
  const WireCodec renamed(
      wire::parse_wire_spec("wire w { big : u32 @0; }"), ft,
      {{"big", "machine_big"}});
  Packet p(ft.size());
  p.set(ft.id_of("machine_big"), 0x11223344);
  EXPECT_EQ(renamed.deparse(p),
            (std::vector<std::uint8_t>{0x11, 0x22, 0x33, 0x44}));
}

TEST(WireCodecTest, UndersizedPacketsAreRefusedUpFront) {
  const banzai::FieldTable ft = demo_table();
  const WireCodec codec(wire::parse_wire_spec(kDemoSpec), ft);
  Packet tiny(1);  // fewer fields than the bound table
  std::vector<std::uint8_t> frame(codec.header_bytes(), 0);
  EXPECT_THROW(codec.parse(frame.data(), frame.size(), tiny),
               std::logic_error);
  EXPECT_THROW(codec.deparse(tiny), std::logic_error);
}

// ---- pcap ------------------------------------------------------------------

TEST(PcapTest, WriteReadRoundTripBothPrecisionsAndFiles) {
  wire::PcapFile file;
  file.nanosecond = true;
  file.linktype = 147;  // DLT_USER0
  for (int i = 0; i < 5; ++i) {
    wire::PcapPacket p;
    p.ts_sec = 1700000000u + static_cast<std::uint32_t>(i);
    p.ts_frac = static_cast<std::uint32_t>(i * 1000);
    p.bytes.assign(static_cast<std::size_t>(3 + i),
                   static_cast<std::uint8_t>(i));
    file.packets.push_back(std::move(p));
  }
  const std::vector<std::uint8_t> blob = wire::write_pcap(file);
  const wire::PcapReadResult r = wire::read_pcap(blob.data(), blob.size());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.file.nanosecond);
  EXPECT_EQ(r.file.linktype, 147u);
  ASSERT_EQ(r.file.packets.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.file.packets[static_cast<std::size_t>(i)].bytes,
              file.packets[static_cast<std::size_t>(i)].bytes);
    EXPECT_EQ(r.file.packets[static_cast<std::size_t>(i)].ts_frac,
              static_cast<std::uint32_t>(i * 1000));
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "wire-test-roundtrip.pcap")
          .string();
  ASSERT_TRUE(wire::write_pcap_file(path, file));
  const wire::PcapReadResult rf = wire::read_pcap_file(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(rf.ok()) << rf.error;
  EXPECT_EQ(rf.file.packets.size(), 5u);
}

TEST(PcapTest, MalformedCapturesRejectWithTypedReasons) {
  // Not a pcap at all.
  const std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_NE(wire::read_pcap(junk.data(), junk.size())
                .error.find("global header"),
            std::string::npos);
  std::vector<std::uint8_t> badmagic(24, 0);
  EXPECT_NE(wire::read_pcap(badmagic.data(), badmagic.size())
                .error.find("not a classic pcap"),
            std::string::npos);

  // A record claiming more bytes than remain: the packets before the damage
  // survive, the error names the offset.
  wire::PcapFile file;
  wire::PcapPacket ok_pkt;
  ok_pkt.bytes = {0xAA, 0xBB};
  file.packets.push_back(ok_pkt);
  std::vector<std::uint8_t> blob = wire::write_pcap(file);
  const std::size_t lie_at = 24 + 8;  // first record's incl_len
  blob[lie_at] = 0xFF;               // claims 255 bytes, 2 present
  const auto r = wire::read_pcap(blob.data(), blob.size());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("truncated pcap"), std::string::npos) << r.error;
  EXPECT_EQ(r.file.packets.size(), 0u);

  // Snaplen-cap violation is "corrupt", not "truncated".
  blob = wire::write_pcap(file);
  blob[lie_at + 2] = 0x40;  // incl_len = 0x0040xxxx > 262144
  const auto r2 = wire::read_pcap(blob.data(), blob.size());
  EXPECT_NE(r2.error.find("corrupt pcap"), std::string::npos) << r2.error;
}

// ---- corpus coverage and the round-trip differential -----------------------

TEST(WireCorpusTest, EveryAlgorithmDeclaresAParsableSpecCoveringItsInputs) {
  for (const auto& alg : algorithms::corpus()) {
    ASSERT_FALSE(alg.wire_spec.empty()) << alg.name;
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    // Led by a const-checked magic so garbage is rejectable.
    ASSERT_FALSE(spec.fields.empty()) << alg.name;
    EXPECT_TRUE(spec.fields[0].has_expect)
        << alg.name << ": first field must be a const-checked magic";
    for (const std::string& in : alg.input_fields)
      EXPECT_NE(spec.find(in), nullptr)
          << alg.name << " wire spec is missing input field " << in;
  }
}

TEST(WireCorpusTest, RoundTripMatchesFieldVectorPathBitExactly) {
  // The tentpole differential: for every corpus algorithm, running packets
  // through wire bytes (deparse workload -> parse -> machine -> deparse)
  // must equal running the same workload through the field-vector path —
  // same egress frames, same machine state.
  constexpr int kPackets = 300;
  for (const auto& alg : algorithms::corpus()) {
    // CoDel doesn't map to any paper atom (Table 4); the LUT-extended
    // target covers it, as in the differential suite.
    const auto target = alg.paper_least_atom == "Doesn't map"
                            ? std::optional<atoms::BanzaiTarget>(
                                  atoms::lut_extended_target())
                            : test_util::least_target(alg.source);
    ASSERT_TRUE(target.has_value()) << alg.name;
    auto via_fields = domino::compile(alg.source, *target);
    auto via_wire = domino::compile(alg.source, *target);
    const auto& ft = via_fields.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    const WireCodec rx(spec, ft);
    const WireCodec tx(spec, ft, via_fields.output_map());

    std::mt19937 rng(99);
    std::mt19937 rng2(99);
    Packet parsed(rx.num_table_fields());
    for (int i = 0; i < kPackets; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, i, f);
      Packet direct(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) direct.set(ft.id_of(k), v);
      std::map<std::string, banzai::Value> f2;
      alg.workload(rng2, i, f2);

      // Wire path: render the workload as a frame, parse it back, process.
      const std::vector<std::uint8_t> frame = rx.deparse(direct);
      const auto r = rx.parse(frame.data(), frame.size(), parsed);
      ASSERT_TRUE(r.ok()) << alg.name << " pkt " << i << ": "
                          << wire::to_string(r.status);
      const Packet out_fields = via_fields.machine().process(direct);
      const Packet out_wire = via_wire.machine().process(parsed);
      ASSERT_EQ(tx.deparse(out_fields), tx.deparse(out_wire))
          << alg.name << " pkt " << i;
    }
    EXPECT_TRUE(via_fields.machine().state() == via_wire.machine().state())
        << alg.name << ": state diverged between field and wire paths";
  }
}

// ---- the service byte path -------------------------------------------------

TEST(WireServiceTest, ByteStreamIngestMatchesSequentialReference) {
  constexpr std::size_t kSlots = 8;
  const auto& alg = algorithms::algorithm("flowlets");
  auto compiled =
      domino::compile(alg.source, *atoms::find_target("banzai-praw"));
  const auto& ft = compiled.machine().fields();
  const auto f_sport = ft.id_of("sport");
  const auto f_dport = ft.id_of("dport");
  const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const WireCodec>(spec, ft);
  auto tx =
      std::make_shared<const WireCodec>(spec, ft, compiled.output_map());

  std::mt19937 rng(4242);
  std::vector<Packet> inputs;
  for (int i = 0; i < 4000; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, i, f);
    Packet p(ft.size());
    for (const auto& [k, v] : f)
      if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
    inputs.push_back(std::move(p));
  }

  std::vector<banzai::Machine> reference;
  for (std::size_t v = 0; v < kSlots; ++v)
    reference.push_back(compiled.machine().clone());
  auto slot_of = [&](const Packet& p) {
    std::uint64_t h = 0;
    for (banzai::FieldId f : {f_sport, f_dport})
      h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(p.get(f))));
    return static_cast<std::size_t>(h % kSlots);
  };
  std::vector<std::vector<std::uint8_t>> expected;
  for (const Packet& p : inputs)
    expected.push_back(tx->deparse(reference[slot_of(p)].process(p)));

  banzai::ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.num_slots = kSlots;
  cfg.batch_size = 128;
  cfg.ring_capacity = 512;
  cfg.flow_key = {f_sport, f_dport};
  banzai::FleetService svc(compiled.machine(), cfg);
  // Codec changes are lifecycle-locked like snapshot/restore.
  EXPECT_THROW(svc.ingest_frame(nullptr, 0), std::logic_error)
      << "byte ingest without a codec must refuse";
  svc.set_wire(rx, tx);
  svc.start();
  EXPECT_THROW(svc.set_wire(rx, tx), std::logic_error);

  std::uint64_t rejected = 0;
  const std::vector<std::uint8_t> runt = {0xD0};
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::vector<std::uint8_t> frame = rx->deparse(inputs[i]);
    const auto in = svc.ingest_frame(frame.data(), frame.size());
    ASSERT_TRUE(in.parse.ok());
    ASSERT_TRUE(in.accepted);
    if (i % 500 == 0) {  // interleave garbage: must not disturb the stream
      EXPECT_EQ(svc.ingest_frame(runt.data(), runt.size()).parse.status,
                ParseStatus::kTruncated);
      ++rejected;
    }
  }
  svc.flush();
  const auto frames = svc.drain_egress_frames();
  const auto st = svc.stats();
  svc.stop();

  ASSERT_EQ(frames.size(), expected.size());
  for (std::size_t i = 0; i < frames.size(); ++i)
    ASSERT_EQ(frames[i], expected[i]) << "frame " << i;
  EXPECT_EQ(st.wire.frames_parsed, inputs.size());
  EXPECT_EQ(st.wire.frames_rejected, rejected);
  EXPECT_EQ(st.wire.reject_truncated, rejected);
  EXPECT_EQ(st.wire.bytes_in, inputs.size() * rx->header_bytes());
  EXPECT_EQ(st.wire.bytes_out, expected.size() * tx->header_bytes());
  for (std::size_t v = 0; v < kSlots; ++v)
    EXPECT_TRUE(svc.slot_machine(v).state() == reference[v].state())
        << "slot " << v;
}

}  // namespace
