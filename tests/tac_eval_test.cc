// Direct semantic-preservation test for the whole normalization pipeline at
// the TAC level: executing the optimized three-address code sequentially
// (TacEvaluator + a real StateStore, arrays included) must match the AST
// reference interpreter packet for packet and state cell for state cell —
// isolating the passes from scheduling and code generation.
#include <gtest/gtest.h>

#include <random>

#include "algorithms/corpus.h"
#include "core/interp.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/sema.h"

namespace domino {
namespace {

class TacPreservationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TacPreservationTest, OptimizedTacMatchesInterpreter) {
  const auto& alg = algorithms::algorithm(GetParam());
  Program prog = parse(alg.source);
  analyze(prog);
  Normalized norm = normalize(prog);

  Interpreter interp(prog);

  // Independent state store for the TAC execution.
  banzai::StateStore tac_state;
  for (const auto& d : prog.state_vars)
    tac_state.declare(d.name, static_cast<std::size_t>(d.size), !d.is_array,
                      d.init);

  std::mt19937 rng(2718), rng2(2718);
  for (int i = 0; i < 1000; ++i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng, i, fields);

    // Reference execution.
    auto pkt = interp.make_packet();
    for (const auto& [k, v] : fields)
      if (interp.fields().try_id_of(k).has_value()) interp.set(pkt, k, v);
    interp.run(pkt);

    // TAC execution: fresh field environment per packet, persistent state.
    std::map<std::string, banzai::Value> fields2;
    alg.workload(rng2, i, fields2);
    std::vector<std::pair<std::string, banzai::Value>> env;
    for (const auto& [k, v] : fields2) env.emplace_back(k, v);
    for (const auto& s : norm.tac.stmts)
      TacEvaluator::exec(s, env, tac_state);

    for (const auto& f : prog.packet_fields) {
      const auto& final_name = norm.final_names.at(f.name);
      ASSERT_EQ(TacEvaluator::read_field(env, final_name),
                interp.get(pkt, f.name))
          << GetParam() << " packet " << i << " field " << f.name;
    }
  }
  EXPECT_TRUE(tac_state == interp.state()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TacPreservationTest,
    ::testing::Values("bloom_filter", "heavy_hitters", "flowlets", "rcp",
                      "sampled_netflow", "hull", "avq", "stfq",
                      "dns_ttl_tracker", "conga", "codel"));

// The raw (pre-copy-prop/DCE) TAC must agree with the optimized TAC: the
// optimizer may only remove work, never change observable values.
class TacOptimizerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TacOptimizerTest, OptimizerPreservesObservables) {
  const auto& alg = algorithms::algorithm(GetParam());
  Program prog = parse(alg.source);
  analyze(prog);
  Normalized norm = normalize(prog);
  EXPECT_LE(norm.tac.stmts.size(), norm.tac_raw.stmts.size());

  banzai::StateStore s_raw, s_opt;
  for (const auto& d : prog.state_vars) {
    s_raw.declare(d.name, static_cast<std::size_t>(d.size), !d.is_array,
                  d.init);
    s_opt.declare(d.name, static_cast<std::size_t>(d.size), !d.is_array,
                  d.init);
  }
  std::mt19937 rng(31415), rng2(31415);
  for (int i = 0; i < 500; ++i) {
    std::map<std::string, banzai::Value> f1, f2;
    alg.workload(rng, i, f1);
    alg.workload(rng2, i, f2);
    std::vector<std::pair<std::string, banzai::Value>> e1(f1.begin(), f1.end());
    std::vector<std::pair<std::string, banzai::Value>> e2(f2.begin(), f2.end());
    for (const auto& s : norm.tac_raw.stmts) TacEvaluator::exec(s, e1, s_raw);
    for (const auto& s : norm.tac.stmts) TacEvaluator::exec(s, e2, s_opt);
    for (const auto& [user, ssa] : norm.final_names)
      ASSERT_EQ(TacEvaluator::read_field(e1, ssa),
                TacEvaluator::read_field(e2, ssa))
          << GetParam() << " field " << user << " packet " << i;
  }
  EXPECT_TRUE(s_raw == s_opt);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TacOptimizerTest,
    ::testing::Values("bloom_filter", "flowlets", "hull", "avq", "stfq",
                      "dns_ttl_tracker", "conga", "codel"));

// The compiled (index-resolved) evaluator must agree with the by-name
// evaluator statement for statement: CompiledTac is the hot path (synthesis
// inner loop), TacEvaluator the readable reference.
class CompiledTacTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CompiledTacTest, CompiledMatchesByNameEvaluator) {
  const auto& alg = algorithms::algorithm(GetParam());
  Program prog = parse(alg.source);
  analyze(prog);
  Normalized norm = normalize(prog);
  CompiledTac compiled(norm.tac);

  banzai::StateStore s_name, s_idx;
  for (const auto& d : prog.state_vars) {
    s_name.declare(d.name, static_cast<std::size_t>(d.size), !d.is_array,
                   d.init);
    s_idx.declare(d.name, static_cast<std::size_t>(d.size), !d.is_array,
                  d.init);
  }
  std::mt19937 rng(1618), rng2(1618);
  for (int i = 0; i < 500; ++i) {
    std::map<std::string, banzai::Value> f1, f2;
    alg.workload(rng, i, f1);
    alg.workload(rng2, i, f2);

    std::vector<std::pair<std::string, banzai::Value>> env_name(f1.begin(),
                                                                f1.end());
    for (const auto& s : norm.tac.stmts)
      TacEvaluator::exec(s, env_name, s_name);

    std::vector<banzai::Value> env_idx = compiled.make_env();
    for (const auto& [k, v] : f2)
      if (auto idx = compiled.index_of(k)) env_idx[*idx] = v;
    compiled.exec(env_idx, s_idx);

    for (const auto& name : compiled.field_names()) {
      const auto idx = compiled.index_of(name);
      ASSERT_TRUE(idx.has_value());
      ASSERT_EQ(env_idx[*idx], TacEvaluator::read_field(env_name, name))
          << GetParam() << " packet " << i << " field " << name;
    }
  }
  EXPECT_TRUE(s_name == s_idx) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CompiledTacTest,
    ::testing::Values("bloom_filter", "heavy_hitters", "flowlets", "rcp",
                      "sampled_netflow", "hull", "avq", "stfq",
                      "dns_ttl_tracker", "conga", "codel"));

}  // namespace
}  // namespace domino
