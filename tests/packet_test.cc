// FieldTable and Packet edge cases the kernel lowering depends on: micro-ops
// address packet fields by dense FieldId, so interning must be idempotent,
// unknown lookups must fail loudly, and the name<->id mapping must survive
// machine cloning and state snapshot/restore unchanged.
#include <gtest/gtest.h>

#include <stdexcept>

#include "algorithms/corpus.h"
#include "banzai/packet.h"
#include "core/compiler.h"

namespace {

using banzai::FieldId;
using banzai::FieldTable;
using banzai::Packet;

TEST(FieldTableTest, InternAssignsDenseIdsInOrder) {
  FieldTable ft;
  EXPECT_EQ(ft.size(), 0u);
  EXPECT_EQ(ft.intern("a"), 0u);
  EXPECT_EQ(ft.intern("b"), 1u);
  EXPECT_EQ(ft.intern("c"), 2u);
  EXPECT_EQ(ft.size(), 3u);
  EXPECT_EQ(ft.names()[1], "b");
}

TEST(FieldTableTest, DuplicateInternReturnsTheExistingId) {
  FieldTable ft;
  const FieldId a = ft.intern("a");
  const FieldId b = ft.intern("b");
  EXPECT_EQ(ft.intern("a"), a);
  EXPECT_EQ(ft.intern("b"), b);
  EXPECT_EQ(ft.size(), 2u) << "duplicate intern must not grow the table";
}

TEST(FieldTableTest, InternIsStableAcrossRehashes) {
  // Many interns force the index map through rehashes; earlier ids and names
  // must be unaffected (micro-ops hold the raw ids forever).
  FieldTable ft;
  const FieldId first = ft.intern("field_0");
  for (int i = 1; i < 1000; ++i) ft.intern("field_" + std::to_string(i));
  EXPECT_EQ(ft.id_of("field_0"), first);
  for (int i = 0; i < 1000; ++i) {
    const auto name = "field_" + std::to_string(i);
    EXPECT_EQ(ft.id_of(name), static_cast<FieldId>(i));
    EXPECT_EQ(ft.name_of(static_cast<FieldId>(i)), name);
  }
}

TEST(FieldTableTest, UnknownLookupsFailLoudly) {
  FieldTable ft;
  ft.intern("known");
  EXPECT_THROW(ft.id_of("unknown"), std::out_of_range);
  EXPECT_FALSE(ft.try_id_of("unknown").has_value());
  EXPECT_TRUE(ft.try_id_of("known").has_value());
  EXPECT_THROW(ft.name_of(5), std::out_of_range);
}

TEST(FieldTableTest, LookupIsExactNotPrefix) {
  FieldTable ft;
  ft.intern("flow");
  EXPECT_FALSE(ft.try_id_of("flow_id").has_value());
  EXPECT_FALSE(ft.try_id_of("flo").has_value());
  EXPECT_FALSE(ft.try_id_of("").has_value());
}

TEST(FieldTableTest, NamesStableAcrossCloneAndSnapshotRestore) {
  auto compiled = domino::compile(algorithms::algorithm("flowlets").source,
                                  *atoms::find_target("banzai-praw"));
  banzai::Machine& m = compiled.machine();
  std::vector<std::string> names = m.fields().names();
  ASSERT_FALSE(names.empty());

  // Snapshot/restore touches only the StateStore, never the FieldTable.
  m.restore_state(m.snapshot_state());
  EXPECT_EQ(m.fields().names(), names);

  // A clone carries an identical table: same names, same ids — this is what
  // lets a shared kernel program address any replica's packets.
  banzai::Machine copy = m.clone();
  EXPECT_EQ(copy.fields().names(), names);
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(copy.fields().id_of(names[i]), m.fields().id_of(names[i]));
}

TEST(PacketTest, CheckedAccessorsThrowAndUnwrittenFieldsReadZero) {
  Packet p(3);
  EXPECT_EQ(p.num_fields(), 3u);
  for (FieldId f = 0; f < 3; ++f) EXPECT_EQ(p.get(f), 0);
  p.set(2, 42);
  EXPECT_EQ(p.get(2), 42);
  EXPECT_THROW(p.get(3), std::out_of_range);
  EXPECT_THROW(p.set(3, 1), std::out_of_range);
}

TEST(PacketTest, EqualityIsFieldwise) {
  Packet a(2), b(2), c(3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c) << "different widths are never equal";
  b.set(1, 7);
  EXPECT_NE(a, b);
  a.set(1, 7);
  EXPECT_EQ(a, b);
}

}  // namespace
