// Differential proof for the batched throughput engine: BatchSim's
// stage-major execution is observationally identical to the cycle-accurate
// PipelineSim and to sequential Machine::process — every egress field of
// every packet and the full final StateStore — on every mappable algorithm in
// the corpus, across batch sizes including ones that straddle the trace
// length, and across both batch shapes (row-major and the columnar
// ColumnBatch currency of banzai/column.h).
#include <gtest/gtest.h>

#include "banzai/batch.h"
#include "banzai/column.h"
#include "test_util.h"

namespace {

using algorithms::AlgorithmInfo;
using banzai::BatchDispatch;
using banzai::ColumnBatch;
using banzai::Packet;

std::vector<Packet> make_workload(const AlgorithmInfo& alg,
                                  const banzai::Machine& machine,
                                  int num_packets, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Packet> trace;
  trace.reserve(static_cast<std::size_t>(num_packets));
  for (int i = 0; i < num_packets; ++i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng, i, fields);
    Packet pkt(machine.fields().size());
    for (const auto& [k, v] : fields)
      if (machine.fields().try_id_of(k).has_value())
        pkt.set(machine.fields().id_of(k), v);
    trace.push_back(std::move(pkt));
  }
  return trace;
}

const char* dispatch_name(BatchDispatch d) {
  switch (d) {
    case BatchDispatch::kAuto: return "auto";
    case BatchDispatch::kRows: return "rows";
    case BatchDispatch::kColumnar: return "cols";
  }
  return "?";
}

struct BatchCase {
  std::string algorithm;
  std::size_t batch_size;
  BatchDispatch dispatch;
};

class BatchEquivalenceTest : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalenceTest, BatchMatchesPipelineAndSequential) {
  const auto& tc = GetParam();
  const AlgorithmInfo& alg = algorithms::algorithm(tc.algorithm);
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);

  // Three independent replicas of the compiled machine, one per engine.
  const banzai::StateStore pristine_state = compiled.machine().state();
  banzai::Machine seq_machine = compiled.machine().clone();
  banzai::Machine pipe_machine = compiled.machine().clone();
  banzai::Machine batch_machine = compiled.machine().clone();

  const int kPackets = 1500;
  const auto trace = make_workload(alg, compiled.machine(), kPackets, 77u);

  std::vector<Packet> seq_out;
  seq_out.reserve(trace.size());
  for (const Packet& p : trace) seq_out.push_back(seq_machine.process(p));

  banzai::PipelineSim pipe(pipe_machine);
  for (const Packet& p : trace) pipe.enqueue(p);
  pipe.drain();

  banzai::BatchSim batch(batch_machine, tc.batch_size, tc.dispatch);
  std::vector<Packet> batch_in = trace;
  batch.enqueue(std::move(batch_in));
  batch.run();

  ASSERT_EQ(pipe.egress().size(), trace.size());
  const std::vector<Packet> batch_out = batch.take_egress();
  ASSERT_EQ(batch_out.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(batch_out[i], seq_out[i]) << "packet " << i;
    ASSERT_EQ(batch_out[i], pipe.egress()[i]) << "packet " << i;
  }
  EXPECT_EQ(batch_machine.state(), seq_machine.state());
  EXPECT_EQ(batch_machine.state(), pipe_machine.state());
  // A forced-columnar run actually took the columnar path for every batch.
  if (tc.dispatch == BatchDispatch::kColumnar) {
    EXPECT_EQ(batch.stats().columnar_batches, batch.stats().batches);
  }
  // Replicas have independent StateStores: running all three engines must
  // leave the prototype machine's state untouched.
  EXPECT_EQ(compiled.machine().state(), pristine_state);
}

std::vector<BatchCase> all_cases() {
  std::vector<BatchCase> cases;
  for (const auto& alg : algorithms::corpus()) {
    if (alg.paper_least_atom == "Doesn't map") continue;
    // 1 = degenerate batches; 64 = interior; 377 leaves a ragged tail batch.
    for (std::size_t bs : {std::size_t{1}, std::size_t{64}, std::size_t{377}})
      for (BatchDispatch d : {BatchDispatch::kRows, BatchDispatch::kColumnar})
        cases.push_back({alg.name, bs, d});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BatchEquivalenceTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      return info.param.algorithm + "_bs" +
             std::to_string(info.param.batch_size) + "_" +
             dispatch_name(info.param.dispatch);
    });

TEST(ColumnBatchTest, GatherScatterRoundTripsAndPreservesExtraFields) {
  // Packets wider than the batch keep their trailing fields across a
  // round-trip; the first num_fields columns transpose faithfully.
  const std::size_t kFields = 3, kWide = 5, kN = 17;
  std::vector<Packet> pkts;
  for (std::size_t i = 0; i < kN; ++i) {
    Packet p(kWide);
    for (std::size_t f = 0; f < kWide; ++f)
      p.set(f, static_cast<banzai::Value>(100 * i + f));
    pkts.push_back(std::move(p));
  }
  const std::vector<Packet> original = pkts;

  ColumnBatch cb;
  cb.gather(pkts.data(), kN, kFields);
  EXPECT_EQ(cb.size(), kN);
  EXPECT_EQ(cb.num_fields(), kFields);
  for (std::size_t f = 0; f < kFields; ++f)
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(cb.col(f)[i], original[i].get(f)) << "col " << f << " i " << i;

  // Mutate one column, scatter back: only that field changes, and the two
  // fields beyond the batch width stay untouched.
  for (std::size_t i = 0; i < kN; ++i) cb.col(1)[i] = -1;
  cb.scatter(pkts.data());
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(pkts[i].get(0), original[i].get(0));
    EXPECT_EQ(pkts[i].get(1), -1);
    EXPECT_EQ(pkts[i].get(2), original[i].get(2));
    EXPECT_EQ(pkts[i].get(3), original[i].get(3));
    EXPECT_EQ(pkts[i].get(4), original[i].get(4));
  }
}

TEST(ColumnBatchTest, NarrowPacketsAreRejected) {
  std::vector<Packet> pkts(3, Packet(2));
  ColumnBatch cb;
  EXPECT_THROW(cb.gather(pkts.data(), pkts.size(), 4), std::invalid_argument);
  cb.gather(pkts.data(), pkts.size(), 2);
  std::vector<Packet> narrow(3, Packet(1));
  EXPECT_THROW(cb.scatter(narrow.data()), std::invalid_argument);
}

TEST(ColumnBatchTest, ReshapeReusesCapacityAcrossBatches) {
  ColumnBatch cb(4, 256);
  const banzai::Value* col0 = cb.col(0);
  cb.reshape(4, 100);  // shrink within capacity: pointers stable
  EXPECT_EQ(cb.col(0), col0);
  EXPECT_EQ(cb.size(), 100u);
  EXPECT_EQ(cb.capacity(), 256u);
}

TEST(BatchSimTest, StatsCountBatchesAndPackets) {
  const AlgorithmInfo& alg = algorithms::algorithm("flowlets");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);

  banzai::BatchSim sim(compiled.machine(), 100);
  const auto trace = make_workload(alg, compiled.machine(), 250, 3u);
  for (const Packet& p : trace) sim.enqueue(p);
  sim.run();
  EXPECT_EQ(sim.stats().packets, 250u);
  EXPECT_EQ(sim.stats().batches, 3u);  // 100 + 100 + 50
  // kAuto keeps row-major ingress row-major (see batch.h): no transposes.
  EXPECT_EQ(sim.stats().columnar_batches, 0u);
  EXPECT_EQ(sim.egress().size(), 250u);
}

TEST(BatchSimTest, DispatchKnobControlsColumnarBatches) {
  const AlgorithmInfo& alg = algorithms::algorithm("flowlets");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  const auto trace = make_workload(alg, compiled.machine(), 40, 9u);

  // kAuto never transposes: BatchSim ingress is row-major, and the
  // measured transpose cost exceeds the column-loop win on corpus-scale
  // pipelines (EXPERIMENTS.md, "Batch shape").
  banzai::Machine autod = compiled.machine().clone();
  banzai::BatchSim asim(autod, 16);
  asim.enqueue(std::vector<Packet>(trace));
  asim.run();
  EXPECT_EQ(asim.stats().columnar_batches, 0u);

  // kColumnar is the explicit opt-in: every batch transposes.
  banzai::Machine kernel = compiled.machine().clone();
  banzai::BatchSim ksim(kernel, 16, banzai::BatchDispatch::kColumnar);
  ksim.enqueue(std::vector<Packet>(trace));
  ksim.run();
  EXPECT_EQ(ksim.stats().columnar_batches, ksim.stats().batches);
  EXPECT_GT(ksim.stats().columnar_batches, 0u);
}

TEST(BatchSimTest, EnqueueMovesWholeTracesAndAppends) {
  const AlgorithmInfo& alg = algorithms::algorithm("rcp");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  const auto trace = make_workload(alg, compiled.machine(), 30, 5u);

  // Reference: one machine fed sequentially.
  banzai::Machine seq = compiled.machine().clone();
  std::vector<Packet> want;
  for (const Packet& p : trace) want.push_back(seq.process(p));

  // Move-append in three chunks: a stolen vector, then two appends (the
  // reserve+move path), preserving arrival order across chunk boundaries.
  banzai::Machine m = compiled.machine().clone();
  banzai::BatchSim sim(m, 8);
  std::vector<Packet> c1(trace.begin(), trace.begin() + 10);
  std::vector<Packet> c2(trace.begin() + 10, trace.begin() + 20);
  sim.enqueue(std::move(c1));
  sim.enqueue(std::move(c2));
  for (std::size_t i = 20; i < trace.size(); ++i) sim.enqueue(trace[i]);
  sim.run();

  const std::vector<Packet> got = sim.take_egress();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "packet " << i;
  // take_egress leaves the queue empty; a second take yields nothing.
  EXPECT_TRUE(sim.egress().empty());
  EXPECT_TRUE(sim.take_egress().empty());
  EXPECT_EQ(m.state(), seq.state());
}

TEST(BatchSimTest, SnapshotRestoreMidStreamUnderColumnarDispatch) {
  // The reshard cycle of FleetService, exercised through the columnar
  // dispatch path: drain half columnar, snapshot, keep draining, restore,
  // drain the rest — must match a sequential machine driven identically.
  const AlgorithmInfo& alg = algorithms::algorithm("flowlets");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  const auto trace = make_workload(alg, compiled.machine(), 600, 41u);
  const std::size_t a = 200, b = 400;

  banzai::Machine ref = compiled.machine().clone();
  banzai::Machine m = compiled.machine().clone();
  banzai::BatchSim sim(m, 64, BatchDispatch::kColumnar);

  std::vector<Packet> want, got;
  banzai::StateStore ref_snap, snap;
  auto drain = [&](std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) want.push_back(ref.process(trace[i]));
    sim.enqueue(std::vector<Packet>(trace.begin() + from, trace.begin() + to));
    sim.run();
    for (Packet& p : sim.take_egress()) got.push_back(std::move(p));
  };
  drain(0, a);
  ref_snap = ref.snapshot_state();
  snap = m.snapshot_state();
  drain(a, b);
  ref.restore_state(ref_snap);
  m.restore_state(snap);
  drain(b, trace.size());

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "packet " << i;
  EXPECT_EQ(m.state(), ref.state());
  EXPECT_EQ(sim.stats().columnar_batches, sim.stats().batches);
}

TEST(BatchSimTest, ZeroBatchSizeIsClampedToOne) {
  const AlgorithmInfo& alg = algorithms::algorithm("rcp");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  banzai::BatchSim sim(compiled.machine(), 0);
  EXPECT_EQ(sim.batch_size(), 1u);
}

}  // namespace
