// Differential proof for the batched throughput engine: BatchSim's
// stage-major execution is observationally identical to the cycle-accurate
// PipelineSim and to sequential Machine::process — every egress field of
// every packet and the full final StateStore — on every mappable algorithm in
// the corpus, across batch sizes including ones that straddle the trace
// length.
#include <gtest/gtest.h>

#include "banzai/batch.h"
#include "test_util.h"

namespace {

using algorithms::AlgorithmInfo;
using banzai::Packet;

std::vector<Packet> make_workload(const AlgorithmInfo& alg,
                                  const banzai::Machine& machine,
                                  int num_packets, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Packet> trace;
  trace.reserve(static_cast<std::size_t>(num_packets));
  for (int i = 0; i < num_packets; ++i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng, i, fields);
    Packet pkt(machine.fields().size());
    for (const auto& [k, v] : fields)
      if (machine.fields().try_id_of(k).has_value())
        pkt.set(machine.fields().id_of(k), v);
    trace.push_back(std::move(pkt));
  }
  return trace;
}

struct BatchCase {
  std::string algorithm;
  std::size_t batch_size;
};

class BatchEquivalenceTest : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalenceTest, BatchMatchesPipelineAndSequential) {
  const auto& tc = GetParam();
  const AlgorithmInfo& alg = algorithms::algorithm(tc.algorithm);
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);

  // Three independent replicas of the compiled machine, one per engine.
  const banzai::StateStore pristine_state = compiled.machine().state();
  banzai::Machine seq_machine = compiled.machine().clone();
  banzai::Machine pipe_machine = compiled.machine().clone();
  banzai::Machine batch_machine = compiled.machine().clone();

  const int kPackets = 1500;
  const auto trace = make_workload(alg, compiled.machine(), kPackets, 77u);

  std::vector<Packet> seq_out;
  seq_out.reserve(trace.size());
  for (const Packet& p : trace) seq_out.push_back(seq_machine.process(p));

  banzai::PipelineSim pipe(pipe_machine);
  for (const Packet& p : trace) pipe.enqueue(p);
  pipe.drain();

  banzai::BatchSim batch(batch_machine, tc.batch_size);
  std::vector<Packet> batch_in = trace;
  batch.enqueue_all(std::move(batch_in));
  batch.run();

  ASSERT_EQ(pipe.egress().size(), trace.size());
  ASSERT_EQ(batch.egress().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(batch.egress()[i], seq_out[i]) << "packet " << i;
    ASSERT_EQ(batch.egress()[i], pipe.egress()[i]) << "packet " << i;
  }
  EXPECT_EQ(batch_machine.state(), seq_machine.state());
  EXPECT_EQ(batch_machine.state(), pipe_machine.state());
  // Replicas have independent StateStores: running all three engines must
  // leave the prototype machine's state untouched.
  EXPECT_EQ(compiled.machine().state(), pristine_state);
}

std::vector<BatchCase> all_cases() {
  std::vector<BatchCase> cases;
  for (const auto& alg : algorithms::corpus()) {
    if (alg.paper_least_atom == "Doesn't map") continue;
    // 1 = degenerate batches; 64 = interior; 377 leaves a ragged tail batch.
    for (std::size_t bs : {std::size_t{1}, std::size_t{64}, std::size_t{377}})
      cases.push_back({alg.name, bs});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BatchEquivalenceTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      return info.param.algorithm + "_bs" +
             std::to_string(info.param.batch_size);
    });

TEST(BatchSimTest, StatsCountBatchesAndPackets) {
  const AlgorithmInfo& alg = algorithms::algorithm("flowlets");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);

  banzai::BatchSim sim(compiled.machine(), 100);
  const auto trace = make_workload(alg, compiled.machine(), 250, 3u);
  for (const Packet& p : trace) sim.enqueue(p);
  sim.run();
  EXPECT_EQ(sim.stats().packets, 250u);
  EXPECT_EQ(sim.stats().batches, 3u);  // 100 + 100 + 50
  EXPECT_EQ(sim.egress().size(), 250u);
}

TEST(BatchSimTest, ZeroBatchSizeIsClampedToOne) {
  const AlgorithmInfo& alg = algorithms::algorithm("rcp");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  banzai::BatchSim sim(compiled.machine(), 0);
  EXPECT_EQ(sim.batch_size(), 1u);
}

}  // namespace
