// The distributed fleet (src/dist/): framing round-trips and their paranoia,
// the reconnect backoff policy, the per-worker health state machine, and the
// end-to-end contracts — a worker cluster's egress is bit-exact against one
// sequential per-slot reference through batching, retries, duplicated
// batches, live slot rebalancing, engine hot-swap, and corrupt-restore
// rejection.  The seeded fault-injection schedules (kill mid-burst,
// reconnect storm) live in dist_chaos_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "banzai/state.h"
#include "core/compiler.h"
#include "dist/framing.h"
#include "dist/front.h"
#include "dist/health.h"
#include "dist/rpc.h"
#include "dist/worker.h"
#include "sim/partition.h"
#include "test_util.h"
#include "wire/codec.h"

namespace {

using banzai::Packet;
using dist::FailureDetector;
using dist::FramingError;
using dist::FrontConfig;
using dist::FrontTier;
using dist::HealthState;
using dist::MsgType;
using dist::WorkerConfig;
using dist::WorkerServer;
using wire::WireCodec;
using wire::WireSpec;

// ---- framing ---------------------------------------------------------------

TEST(DistFramingTest, HelloRoundTrips) {
  dist::Hello h;
  h.algorithm = "flowlets";
  h.num_slots = 16;
  h.header_bytes = 14;
  const auto bytes = dist::encode_hello(h);
  const dist::Hello back = dist::decode_hello(bytes.data(), bytes.size());
  EXPECT_EQ(back.version, dist::kProtocolVersion);
  EXPECT_EQ(back.algorithm, "flowlets");
  EXPECT_EQ(back.num_slots, 16u);
  EXPECT_EQ(back.header_bytes, 14u);
}

TEST(DistFramingTest, IngestBatchAndAckRoundTrip) {
  dist::IngestBatch b;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    dist::FrameRecord f;
    f.seq = i;
    f.slot = static_cast<std::uint32_t>(i % 2);
    f.bytes = {static_cast<std::uint8_t>(i), 0xAB};
    b.frames.push_back(std::move(f));
  }
  const auto eb = dist::encode_ingest_batch(b);
  const dist::IngestBatch bb = dist::decode_ingest_batch(eb.data(), eb.size());
  ASSERT_EQ(bb.frames.size(), 3u);
  EXPECT_EQ(bb.frames[2].seq, 3u);
  EXPECT_EQ(bb.frames[2].bytes, (std::vector<std::uint8_t>{3, 0xAB}));

  dist::IngestAck a;
  a.seqs = {1, 2, 3};
  a.statuses = {dist::FrameStatus::kAccepted, dist::FrameStatus::kDuplicate,
                dist::FrameStatus::kRejectTruncated};
  a.egress.push_back({7, {0xDE, 0xAD}});
  const auto ea = dist::encode_ingest_ack(a);
  const dist::IngestAck ab = dist::decode_ingest_ack(ea.data(), ea.size());
  ASSERT_EQ(ab.statuses.size(), 3u);
  EXPECT_EQ(ab.statuses[1], dist::FrameStatus::kDuplicate);
  ASSERT_EQ(ab.egress.size(), 1u);
  EXPECT_EQ(ab.egress[0].seq, 7u);
}

TEST(DistFramingTest, TruncatedAndTrailingBytesThrow) {
  dist::Hello h;
  h.algorithm = "x";
  const auto bytes = dist::encode_hello(h);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_THROW(dist::decode_hello(bytes.data(), cut), FramingError)
        << "cut at " << cut;
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(dist::decode_hello(trailing.data(), trailing.size()),
               FramingError);
}

TEST(DistFramingTest, StateStoreSerializationIsCanonicalAndValidated) {
  banzai::StateStore s;
  s.declare("zeta", 4, false);
  s.declare("alpha", 1, true);
  s.var("alpha").store(0, 42);
  s.var("zeta").store(2, -7);
  const auto blob = dist::serialize_state_store(s);
  // Canonical: a same-content store built in another order emits the same
  // bytes, so migration tests can compare blobs directly.
  banzai::StateStore t;
  t.declare("alpha", 1, true);
  t.declare("zeta", 4, false);
  t.var("alpha").store(0, 42);
  t.var("zeta").store(2, -7);
  EXPECT_EQ(blob, dist::serialize_state_store(t));

  const banzai::StateStore back =
      dist::deserialize_state_store(blob.data(), blob.size());
  EXPECT_TRUE(back.same_shape(s));
  EXPECT_EQ(back.var("alpha").load(0), 42);
  EXPECT_EQ(back.var("zeta").load(2), -7);

  // Corruption must throw before any store is returned.
  for (std::size_t cut = 1; cut < blob.size(); ++cut)
    EXPECT_THROW(dist::deserialize_state_store(blob.data(), cut),
                 FramingError);
  auto trailing = blob;
  trailing.push_back(0xFF);
  EXPECT_THROW(
      dist::deserialize_state_store(trailing.data(), trailing.size()),
      FramingError);
}

TEST(DistFramingTest, StateStoreDecoderRejectsSemanticGarbage) {
  // scalar flagged with more than one cell
  {
    std::vector<std::uint8_t> out;
    dist::Writer w(out);
    w.u32(1);
    w.str("x");
    w.u8(1);   // scalar
    w.u32(2);  // ...with two cells
    w.u32(0);
    w.u32(0);
    EXPECT_THROW(dist::deserialize_state_store(out.data(), out.size()),
                 FramingError);
  }
  // duplicate variable name
  {
    std::vector<std::uint8_t> out;
    dist::Writer w(out);
    w.u32(2);
    for (int i = 0; i < 2; ++i) {
      w.str("dup");
      w.u8(1);
      w.u32(1);
      w.u32(0);
    }
    EXPECT_THROW(dist::deserialize_state_store(out.data(), out.size()),
                 FramingError);
  }
  // zero cells
  {
    std::vector<std::uint8_t> out;
    dist::Writer w(out);
    w.u32(1);
    w.str("x");
    w.u8(0);
    w.u32(0);
    EXPECT_THROW(dist::deserialize_state_store(out.data(), out.size()),
                 FramingError);
  }
}

// ---- backoff ---------------------------------------------------------------

TEST(DistBackoffTest, BoundedExponentialWithDeterministicJitter) {
  const dist::Backoff b(dist::Millis(10), dist::Millis(400), 7);
  std::uint64_t prev_nominal = 0;
  for (std::uint32_t a = 0; a < 12; ++a) {
    const std::uint64_t nominal =
        std::min<std::uint64_t>(10ull << std::min(a, 20u), 400);
    const auto d = static_cast<std::uint64_t>(b.delay(a).count());
    EXPECT_GE(d, nominal / 2) << "attempt " << a;
    EXPECT_LT(d, nominal) << "attempt " << a;
    EXPECT_GE(nominal, prev_nominal);
    prev_nominal = nominal;
  }
  // Deterministic per seed, decorrelated across seeds.
  const dist::Backoff same(dist::Millis(10), dist::Millis(400), 7);
  const dist::Backoff other(dist::Millis(10), dist::Millis(400), 8);
  bool any_differ = false;
  for (std::uint32_t a = 0; a < 12; ++a) {
    EXPECT_EQ(b.delay(a).count(), same.delay(a).count());
    any_differ = any_differ || b.delay(a) != other.delay(a);
  }
  EXPECT_TRUE(any_differ) << "jitter ignores the seed";
}

// ---- health state machine --------------------------------------------------

TEST(DistHealthTest, WalksHealthySuspectDeadRecovering) {
  FailureDetector d(dist::HealthConfig{3});
  const auto now = dist::Clock::now();
  EXPECT_EQ(d.state(), HealthState::kHealthy);
  d.on_timeout(now);
  EXPECT_EQ(d.state(), HealthState::kSuspect);
  d.on_success(now);
  EXPECT_EQ(d.state(), HealthState::kHealthy);
  EXPECT_EQ(d.consecutive_failures(), 0u);
  d.on_timeout(now);
  d.on_error(now);
  EXPECT_EQ(d.state(), HealthState::kSuspect);
  d.on_timeout(now);
  EXPECT_EQ(d.state(), HealthState::kDead);
  EXPECT_FALSE(d.alive());
  EXPECT_EQ(d.deaths(), 1u);
  // Dead does not flap back on a stray success; only a reconnect handshake
  // re-admits, and the next success completes the recovery arc.
  d.on_success(now);
  EXPECT_EQ(d.state(), HealthState::kDead);
  d.on_reconnect(now);
  EXPECT_EQ(d.state(), HealthState::kRecovering);
  EXPECT_EQ(d.recoveries(), 0u);
  d.on_success(now);
  EXPECT_EQ(d.state(), HealthState::kHealthy);
  EXPECT_EQ(d.recoveries(), 1u);
  EXPECT_EQ(d.timeouts(), 3u);
  EXPECT_EQ(d.errors(), 1u);
}

// ---- cluster fixture -------------------------------------------------------

constexpr std::size_t kSlots = 8;

struct Cluster {
  domino::CompileResult compiled;
  std::shared_ptr<const WireCodec> rx, tx;
  std::vector<std::unique_ptr<WorkerServer>> workers;
  std::unique_ptr<FrontTier> front;
  std::vector<banzai::FieldId> flow_key;

  explicit Cluster(std::size_t n_workers, std::uint64_t seed = 1,
                   std::uint32_t dup_every = 0, std::uint32_t stall_every = 0)
      : compiled(domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"))) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    rx = std::make_shared<const WireCodec>(spec, ft);
    tx = std::make_shared<const WireCodec>(spec, ft, compiled.output_map());
    flow_key = {ft.id_of("sport"), ft.id_of("dport")};

    for (std::size_t w = 0; w < n_workers; ++w) {
      WorkerConfig wc;
      wc.algorithm = "flowlets";
      wc.num_slots = kSlots;
      wc.num_shards = 2;
      wc.batch_size = 32;
      wc.ring_capacity = 256;
      wc.flow_key = {"sport", "dport"};
      wc.stall_every = stall_every;
      wc.stall_for = dist::Millis(stall_every ? 300 : 0);
      workers.push_back(std::make_unique<WorkerServer>(compiled.machine(), rx,
                                                       tx, wc));
      workers.back()->start();
    }

    FrontConfig fc;
    fc.algorithm = "flowlets";
    fc.num_slots = kSlots;
    fc.flow_key = flow_key;
    fc.seed = seed;
    fc.dup_every = dup_every;
    fc.rpc_timeout = dist::Millis(stall_every ? 150 : 2000);
    fc.max_batch = 16;
    fc.dead_after = 2;
    front = std::make_unique<FrontTier>(rx, fc);
    for (auto& w : workers) front->add_worker(w->port());
    front->connect();
  }

  ~Cluster() {
    for (auto& w : workers) w->stop();
  }

  // The acceptance bar's reference: ONE sequential per-slot machine set fed
  // the same frames in offer order.
  std::vector<std::vector<std::uint8_t>> sequential_reference(
      const std::vector<std::vector<std::uint8_t>>& frames) {
    std::vector<banzai::Machine> slots;
    for (std::size_t v = 0; v < kSlots; ++v)
      slots.push_back(compiled.machine().clone());
    Packet scratch(compiled.machine().fields().size());
    std::vector<std::vector<std::uint8_t>> out;
    for (const auto& f : frames) {
      if (!rx->parse_exact(f.data(), f.size(), scratch).ok()) continue;
      std::uint64_t h = 0;
      for (banzai::FieldId fk : flow_key)
        h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(
                                      scratch.get(fk))));
      out.push_back(tx->deparse(slots[h % kSlots].process(scratch)));
    }
    return out;
  }

  std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n,
                                                     unsigned rng_seed) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    std::mt19937 rng(rng_seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t i = 0; i < n; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, static_cast<int>(i), f);
      Packet p(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
      frames.push_back(rx->deparse(p));
    }
    return frames;
  }
};

// ---- end-to-end contracts --------------------------------------------------

TEST(DistClusterTest, SingleWorkerMatchesSequentialReference) {
  Cluster c(1);
  const auto frames = c.make_frames(600, 11);
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  EXPECT_TRUE(c.front->settled());
}

TEST(DistClusterTest, FourWorkersMatchSequentialReferenceWithRejects) {
  Cluster c(4);
  auto frames = c.make_frames(1200, 23);
  // Interleave malformed frames: they must tombstone, not disturb order.
  const std::vector<std::uint8_t> runt = {0xD0};
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < frames.size(); i += 100) {
    frames.insert(frames.begin() + static_cast<std::ptrdiff_t>(i), runt);
    ++rejected;
  }
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_EQ(st.frames_offered, frames.size());
  EXPECT_EQ(st.rejects, rejected);
  EXPECT_EQ(st.frames_acked + st.rejects, frames.size());
}

TEST(DistClusterTest, DuplicatedBatchesAreFullyDeduplicated) {
  Cluster c(2, /*seed=*/3, /*dup_every=*/3);
  const auto frames = c.make_frames(500, 31);
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_GT(st.dup_acks, 0u) << "the dup schedule never fired";
  // A duplicate batch on a healthy connection carries no egress (its arrival
  // confirmed the original reply), so the window stays duplicate-free here;
  // the window-dedup path is exercised by post-kill replay below.
  EXPECT_EQ(st.egress_duplicates, 0u);
  EXPECT_EQ(st.frames_acked, frames.size());
}

TEST(DistClusterTest, LiveSlotRebalanceUnderLoadStaysBitExact) {
  Cluster c(3);
  const auto frames = c.make_frames(900, 47);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    c.front->offer(frames[i]);
    // Shuffle ownership mid-stream, repeatedly: slot s hops to a different
    // worker while its flows are in flight.
    if (i == 300) c.front->move_slot(0, c.front->owner_of(0) == 2 ? 0 : 2);
    if (i == 450) c.front->move_slot(3, c.front->owner_of(3) == 1 ? 0 : 1);
    if (i == 600) c.front->move_slot(0, 1);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_GE(st.slot_moves, 3u);
  // Every sent frame (originals + post-move replays) got exactly one status:
  // fresh apply or worker-side dedup.
  EXPECT_EQ(st.frames_acked + st.dup_acks, st.frames_sent);
}

TEST(DistClusterTest, EngineHotSwapMidStreamStaysBitExact) {
  Cluster c(2);
  const auto frames = c.make_frames(800, 53);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    c.front->offer(frames[i]);
    if (i == 250)
      c.front->swap_engine(
          static_cast<std::uint8_t>(banzai::ExecEngine::kKernel));
    if (i == 550)
      c.front->swap_engine(
          static_cast<std::uint8_t>(banzai::ExecEngine::kClosure));
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
}

TEST(DistClusterTest, WorkerKillMidBurstRecoversViaMigrationAndReplay) {
  Cluster c(3);
  const auto frames = c.make_frames(900, 61);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 300) c.front->checkpoint();
    if (i == 450) {
      c.workers[1]->kill();  // SIGKILL stand-in: all state gone
      c.front->evict(1);     // the harness knows; detectors would too, slower
    }
    c.front->offer(frames[i]);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_EQ(st.migrations, 1u);
  EXPECT_GT(st.replays, 0u);
  EXPECT_GT(st.checkpoints, 0u);
  // Frames the dead worker acked after the checkpoint were replayed onto the
  // survivor, which re-applied them and re-emitted their egress — the
  // exactly-once window must have swallowed those.
  EXPECT_GT(st.egress_duplicates, 0u);
  EXPECT_EQ(c.front->worker_view(1).health, HealthState::kDead);
}

TEST(DistClusterTest, KillWithoutAnyCheckpointReplaysFromScratch) {
  Cluster c(2);
  const auto frames = c.make_frames(400, 67);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 200) {
      c.workers[0]->kill();
      c.front->evict(0);
    }
    c.front->offer(frames[i]);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
}

// ---- the corrupt-restore guard (raw protocol) ------------------------------

// The worker serves one connection at a time, so these tests skip the front
// tier entirely and speak the protocol over a raw Conn — which is the point:
// the restore guard must hold against arbitrary bytes, not just what a
// well-behaved FrontTier would send.
struct RawWorker {
  domino::CompileResult compiled;
  std::shared_ptr<const WireCodec> rx, tx;
  std::unique_ptr<WorkerServer> worker;
  std::vector<banzai::FieldId> flow_key;
  dist::Conn conn;
  std::uint64_t next_seq = 1;

  RawWorker()
      : compiled(domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"))) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    rx = std::make_shared<const WireCodec>(spec, ft);
    tx = std::make_shared<const WireCodec>(spec, ft, compiled.output_map());
    flow_key = {ft.id_of("sport"), ft.id_of("dport")};
    WorkerConfig wc;
    wc.algorithm = "flowlets";
    wc.num_slots = kSlots;
    wc.flow_key = {"sport", "dport"};
    worker =
        std::make_unique<WorkerServer>(compiled.machine(), rx, tx, wc);
    worker->start();
    conn = dist::connect_local(worker->port(), dist::Millis(2000));
    dist::Hello h;
    h.algorithm = "flowlets";
    h.num_slots = kSlots;
    h.header_bytes = static_cast<std::uint32_t>(rx->header_bytes());
    const auto resp = call(MsgType::kHello, dist::encode_hello(h));
    EXPECT_EQ(resp.type, MsgType::kHelloAck);
  }

  ~RawWorker() { worker->stop(); }

  dist::Message call(MsgType type, const std::vector<std::uint8_t>& payload) {
    const auto deadline = dist::Clock::now() + dist::Millis(2000);
    conn.send_msg(type, payload, deadline);
    return conn.recv_msg(deadline);
  }

  std::uint32_t slot_of(const std::vector<std::uint8_t>& frame) {
    Packet scratch(compiled.machine().fields().size());
    EXPECT_TRUE(rx->parse_exact(frame.data(), frame.size(), scratch).ok());
    std::uint64_t h = 0;
    for (banzai::FieldId fk : flow_key)
      h = netsim::mix64(
          h ^ static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(scratch.get(fk))));
    return static_cast<std::uint32_t>(h % kSlots);
  }

  std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n,
                                                     unsigned rng_seed) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    std::mt19937 rng(rng_seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t i = 0; i < n; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, static_cast<int>(i), f);
      Packet p(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
      frames.push_back(rx->deparse(p));
    }
    return frames;
  }

  // Ingests frames in one batch and returns the per-frame statuses.
  std::vector<dist::FrameStatus> ingest(
      const std::vector<std::vector<std::uint8_t>>& frames) {
    dist::IngestBatch b;
    for (const auto& f : frames) {
      dist::FrameRecord rec;
      rec.seq = next_seq++;
      rec.slot = slot_of(f);
      rec.bytes = f;
      b.frames.push_back(std::move(rec));
    }
    const auto resp =
        call(MsgType::kIngestBatch, dist::encode_ingest_batch(b));
    EXPECT_EQ(resp.type, MsgType::kIngestAck);
    const auto ack =
        dist::decode_ingest_ack(resp.payload.data(), resp.payload.size());
    EXPECT_EQ(ack.statuses.size(), frames.size());
    return ack.statuses;
  }

  std::vector<std::uint8_t> snapshot_blob(std::uint32_t slot) {
    dist::SnapshotReq req;
    req.slots.push_back(slot);
    const auto resp = call(MsgType::kSnapshotReq,
                           dist::encode_snapshot_req(req));
    EXPECT_EQ(resp.type, MsgType::kSnapshotResp);
    const auto sr =
        dist::decode_snapshot_resp(resp.payload.data(), resp.payload.size());
    EXPECT_EQ(sr.slots.size(), 1u);
    return sr.slots.at(0).state;
  }
};

TEST(DistRestoreGuardTest, CorruptBlobRejectsCleanlyAndStateIsUntouched) {
  RawWorker w;
  // Put real state into slot machines first.
  for (const dist::FrameStatus st : w.ingest(w.make_frames(200, 71)))
    ASSERT_EQ(st, dist::FrameStatus::kAccepted);
  const auto before = w.snapshot_blob(2);

  // (a) garbage bytes: framing-level corruption.
  {
    dist::RestoreReq req;
    dist::SlotState s;
    s.slot = 2;
    s.applied_seq = 999;
    s.state = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
    req.slots.push_back(std::move(s));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }
  // (b) well-formed blob of the wrong shape.
  {
    dist::RestoreReq req;
    dist::SlotState s;
    s.slot = 2;
    s.state = dist::serialize_state_store(banzai::StateStore{});
    req.slots.push_back(std::move(s));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }
  // (c) slot out of range.
  {
    dist::RestoreReq req;
    dist::SlotState s;
    s.slot = 999;
    s.state = before;
    req.slots.push_back(std::move(s));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }
  // (d) a batch where the LAST entry is corrupt must not apply the first:
  // all-or-nothing validation.
  {
    dist::RestoreReq req;
    dist::SlotState good;
    good.slot = 2;
    good.applied_seq = 1u << 20;  // would poison the dedup table if applied
    good.state = before;
    dist::SlotState bad;
    bad.slot = 3;
    bad.state = {0x00};
    req.slots.push_back(std::move(good));
    req.slots.push_back(std::move(bad));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }

  // The worker keeps serving and its state is byte-identical.
  const auto after = w.snapshot_blob(2);
  EXPECT_EQ(before, after);
  EXPECT_GE(w.worker->stats().restore_rejects, 4u);

  // And the dedup table was not poisoned by the rejected applied_seq: fresh
  // frames (seqs far below the rejected 2^20) still apply.
  for (const dist::FrameStatus st : w.ingest(w.make_frames(50, 73)))
    EXPECT_EQ(st, dist::FrameStatus::kAccepted);
}

// The retried-reject regression: a rejected frame never advances the slot
// watermark, so once a LATER frame in the slot does, a retry of the reject
// (after a lost ack) hits the dedup guard.  It must be re-answered its
// original reject status — a kDuplicate there is fatal, because the front
// only tombstones reject statuses and the seq would never settle.
TEST(DistWorkerDedupTest, RetriedRejectKeepsItsStatusAfterWatermarkAdvance) {
  RawWorker w;
  const auto valid = w.make_frames(1, 131).at(0);
  dist::IngestBatch b;
  dist::FrameRecord runt;
  runt.seq = 1;
  runt.slot = w.slot_of(valid);  // same slot: the accept advances past it
  runt.bytes = {0xD0};
  dist::FrameRecord ok;
  ok.seq = 2;
  ok.slot = runt.slot;
  ok.bytes = valid;
  b.frames.push_back(runt);
  b.frames.push_back(ok);
  const auto payload = dist::encode_ingest_batch(b);

  auto resp = w.call(MsgType::kIngestBatch, payload);
  ASSERT_EQ(resp.type, MsgType::kIngestAck);
  auto ack = dist::decode_ingest_ack(resp.payload.data(), resp.payload.size());
  ASSERT_EQ(ack.statuses.size(), 2u);
  const dist::FrameStatus reject = ack.statuses[0];
  EXPECT_NE(reject, dist::FrameStatus::kAccepted);
  EXPECT_NE(reject, dist::FrameStatus::kDuplicate);
  EXPECT_EQ(ack.statuses[1], dist::FrameStatus::kAccepted);

  // Lost-ack retry: the identical batch again.  Both frames now sit at or
  // below the slot watermark (2); the applied one dedups, the reject must
  // reproduce its verdict.
  resp = w.call(MsgType::kIngestBatch, payload);
  ASSERT_EQ(resp.type, MsgType::kIngestAck);
  ack = dist::decode_ingest_ack(resp.payload.data(), resp.payload.size());
  ASSERT_EQ(ack.statuses.size(), 2u);
  EXPECT_EQ(ack.statuses[0], reject);
  EXPECT_EQ(ack.statuses[1], dist::FrameStatus::kDuplicate);
}

// An empty state blob in a RestoreReq is the front's explicit "start from
// scratch" order: the slot resets to the prototype's pristine initial state
// and the dedup watermark to the given applied_seq — so a migration target
// that silently kept stale state for the slot starts from a known point.
TEST(DistRestoreGuardTest, EmptyStateBlobResetsSlotToInitialState) {
  RawWorker w;
  const auto pristine = w.snapshot_blob(0);  // canonical: same for any slot
  const auto frames = w.make_frames(120, 83);
  for (const dist::FrameStatus st : w.ingest(frames))
    ASSERT_EQ(st, dist::FrameStatus::kAccepted);

  // Find a slot the workload dirtied (and a frame that routes to it).
  std::uint32_t slot = kSlots;
  for (std::uint32_t s = 0; s < kSlots; ++s)
    if (w.snapshot_blob(s) != pristine) {
      slot = s;
      break;
    }
  ASSERT_LT(slot, kSlots) << "workload never touched any slot state";
  const std::vector<std::uint8_t>* frame = nullptr;
  for (const auto& f : frames)
    if (w.slot_of(f) == slot) {
      frame = &f;
      break;
    }
  ASSERT_NE(frame, nullptr);

  dist::RestoreReq req;
  dist::SlotState reset;
  reset.slot = slot;  // applied_seq 0, state empty: the reset order
  req.slots.push_back(std::move(reset));
  const auto resp =
      w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
  EXPECT_EQ(resp.type, MsgType::kRestoreAck);
  EXPECT_EQ(w.snapshot_blob(slot), pristine);

  // The dedup table reset too: seq 1 for the slot applies fresh.
  dist::IngestBatch b;
  dist::FrameRecord rec;
  rec.seq = 1;
  rec.slot = slot;
  rec.bytes = *frame;
  b.frames.push_back(std::move(rec));
  const auto r2 = w.call(MsgType::kIngestBatch, dist::encode_ingest_batch(b));
  ASSERT_EQ(r2.type, MsgType::kIngestAck);
  const auto ack =
      dist::decode_ingest_ack(r2.payload.data(), r2.payload.size());
  ASSERT_EQ(ack.statuses.size(), 1u);
  EXPECT_EQ(ack.statuses[0], dist::FrameStatus::kAccepted);
}

TEST(DistRestoreGuardTest, ValidRestoreIsAcceptedAndApplied) {
  RawWorker w;
  for (const dist::FrameStatus st : w.ingest(w.make_frames(200, 79)))
    ASSERT_EQ(st, dist::FrameStatus::kAccepted);
  const auto blob = w.snapshot_blob(1);

  dist::RestoreReq req;
  dist::SlotState s;
  s.slot = 4;  // restore slot 1's state into slot 4 (same shape: same proto)
  s.applied_seq = 0;
  s.state = blob;
  req.slots.push_back(std::move(s));
  const auto resp =
      w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
  EXPECT_EQ(resp.type, MsgType::kRestoreAck);
  EXPECT_EQ(w.snapshot_blob(4), blob);
}

// ---- hostile peers (front-tier hardening) ----------------------------------

// A scripted peer speaking just enough of the worker protocol to misbehave
// on purpose: it acks every ingest (optionally echoing frame bytes back as
// egress), can prepend one corrupt-seq egress record, and can slam the
// connection shut on RestoreReq — the failure modes the front tier must
// absorb without crashing or corrupting its window.
struct ScriptedWorker {
  dist::Listener listener;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::uint32_t num_slots;
  bool echo_egress = false;      // return each frame's bytes as its egress
  bool close_on_restore = false;
  std::uint64_t inject_seq = 0;  // nonzero: prepend {inject_seq, junk} once
  std::atomic<bool> injected{false};

  explicit ScriptedWorker(std::uint32_t slots) : num_slots(slots) {
    listener.listen(0);
    thread = std::thread([this] { run(); });
  }
  ~ScriptedWorker() {
    stop.store(true);
    listener.shutdown();
    if (thread.joinable()) thread.join();
    listener.close();
  }
  std::uint16_t port() const { return listener.port(); }

  void run() {
    while (!stop.load()) {
      dist::Conn conn;
      try {
        conn = listener.accept(dist::Clock::now() + dist::Millis(100));
      } catch (const dist::RpcTimeout&) {
        continue;
      } catch (const dist::RpcError&) {
        return;
      }
      serve(conn);
    }
  }

  void reply(dist::Conn& conn, MsgType type,
             const std::vector<std::uint8_t>& payload) {
    conn.send_msg(type, payload, dist::Clock::now() + dist::Millis(2000));
  }

  void serve(dist::Conn& conn) {
    while (!stop.load()) {
      dist::Message req;
      try {
        req = conn.recv_msg(dist::Clock::now() + dist::Millis(200));
      } catch (const dist::RpcTimeout&) {
        continue;
      } catch (const dist::RpcError&) {
        return;
      }
      try {
        switch (req.type) {
          case MsgType::kHello: {
            dist::HelloAck ack;
            ack.num_slots = num_slots;
            reply(conn, MsgType::kHelloAck, dist::encode_hello_ack(ack));
            break;
          }
          case MsgType::kIngestBatch: {
            const auto batch = dist::decode_ingest_batch(req.payload.data(),
                                                         req.payload.size());
            dist::IngestAck ack;
            if (inject_seq != 0 && !injected.exchange(true))
              ack.egress.push_back({inject_seq, {0xEE}});
            for (const auto& f : batch.frames) {
              ack.seqs.push_back(f.seq);
              ack.statuses.push_back(dist::FrameStatus::kAccepted);
              if (echo_egress) ack.egress.push_back({f.seq, f.bytes});
            }
            reply(conn, MsgType::kIngestAck, dist::encode_ingest_ack(ack));
            break;
          }
          case MsgType::kRestoreReq:
            if (close_on_restore) return;  // die mid-restore
            reply(conn, MsgType::kRestoreAck, {});
            break;
          case MsgType::kSnapshotReq:
            reply(conn, MsgType::kSnapshotResp,
                  dist::encode_snapshot_resp(dist::SnapshotResp{}));
            break;
          case MsgType::kFlushReq:
            reply(conn, MsgType::kFlushAck,
                  dist::encode_flush_ack(dist::FlushAck{}));
            break;
          case MsgType::kHeartbeat: {
            const auto hb =
                dist::decode_heartbeat(req.payload.data(), req.payload.size());
            dist::HeartbeatAck ack;
            ack.nonce = hb.nonce;
            reply(conn, MsgType::kHeartbeatAck,
                  dist::encode_heartbeat_ack(ack));
            break;
          }
          case MsgType::kStop:
            return;
          default:
            reply(conn, MsgType::kError,
                  dist::encode_error(dist::ErrorMsg{"scripted: unexpected"}));
            break;
        }
      } catch (const dist::RpcError&) {
        return;
      }
    }
  }
};

// Codec + workload plumbing without any real worker attached.
struct CodecRig {
  domino::CompileResult compiled;
  std::shared_ptr<const WireCodec> rx, tx;
  std::vector<banzai::FieldId> flow_key;

  CodecRig()
      : compiled(domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"))) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    rx = std::make_shared<const WireCodec>(spec, ft);
    tx = std::make_shared<const WireCodec>(spec, ft, compiled.output_map());
    flow_key = {ft.id_of("sport"), ft.id_of("dport")};
  }

  std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n,
                                                     unsigned rng_seed) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    std::mt19937 rng(rng_seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t i = 0; i < n; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, static_cast<int>(i), f);
      Packet p(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
      frames.push_back(rx->deparse(p));
    }
    return frames;
  }
};

// A corrupted (but well-framed) reply carrying a seq the front never issued
// must be dropped and counted, not fed to the egress window — a ~2^64 seq
// would otherwise drive a multi-exabyte window resize and kill the front.
TEST(DistFrontGuardTest, CorruptEgressSeqIsDroppedNotFatal) {
  CodecRig rig;
  ScriptedWorker fake(kSlots);
  fake.echo_egress = true;
  fake.inject_seq = ~0ull;

  FrontConfig fc;
  fc.algorithm = "flowlets";
  fc.num_slots = kSlots;
  fc.flow_key = rig.flow_key;
  FrontTier front(rig.rx, fc);
  front.add_worker(fake.port());
  front.connect();

  const auto frames = rig.make_frames(40, 137);
  for (const auto& f : frames) front.offer(f);
  front.flush();

  // The scripted worker echoes ingress as egress, so the stream settles and
  // comes back byte-identical; the poisoned record vanished into a counter.
  const auto got = front.drain_egress();
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], frames[i]) << "frame " << i;
  EXPECT_TRUE(front.settled());
  EXPECT_EQ(front.stats().egress_corrupt, 1u);
}

// A migration target dying mid-restore is a transport failure, not a fatal
// error: restore_to must absorb the connection reset, burn the target's
// failure budget, and let migrate() pick another survivor — the documented
// "later failures are handled, not thrown" contract.
TEST(DistFrontGuardTest, MigrationSurvivesTargetDyingMidRestore) {
  CodecRig rig;
  std::vector<std::unique_ptr<WorkerServer>> workers;
  for (int i = 0; i < 2; ++i) {
    WorkerConfig wc;
    wc.algorithm = "flowlets";
    wc.num_slots = kSlots;
    wc.num_shards = 2;
    wc.flow_key = {"sport", "dport"};
    workers.push_back(std::make_unique<WorkerServer>(rig.compiled.machine(),
                                                     rig.rx, rig.tx, wc));
    workers.back()->start();
  }
  ScriptedWorker fake(kSlots);
  fake.close_on_restore = true;  // acks ingest, dies on every RestoreReq

  FrontConfig fc;
  fc.algorithm = "flowlets";
  fc.num_slots = kSlots;
  fc.flow_key = rig.flow_key;
  fc.max_batch = 16;
  fc.dead_after = 2;
  FrontTier front(rig.rx, fc);
  front.add_worker(workers[0]->port());
  front.add_worker(workers[1]->port());
  front.add_worker(fake.port());
  front.connect();

  // Real state on the real workers; the scripted one acks its slots' frames
  // without egress (protocol-legal: the piggyback is opportunistic), so its
  // seqs stay pending until post-migration replay re-applies them for real.
  const auto frames = rig.make_frames(600, 139);
  const auto expected = [&] {
    std::vector<banzai::Machine> slots;
    for (std::size_t v = 0; v < kSlots; ++v)
      slots.push_back(rig.compiled.machine().clone());
    Packet scratch(rig.compiled.machine().fields().size());
    std::vector<std::vector<std::uint8_t>> out;
    for (const auto& f : frames) {
      if (!rig.rx->parse_exact(f.data(), f.size(), scratch).ok()) continue;
      std::uint64_t h = 0;
      for (banzai::FieldId fk : rig.flow_key)
        h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(
                                      scratch.get(fk))));
      out.push_back(rig.tx->deparse(slots[h % kSlots].process(scratch)));
    }
    return out;
  }();

  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 200) front.checkpoint();  // makes the migration restore real
    if (i == 400) {
      workers[1]->kill();
      // Migration fans the dead worker's slots across survivors; every
      // restore aimed at the scripted worker hits a connection reset and
      // must re-route to the real survivor instead of throwing.
      front.evict(1);
    }
    front.offer(frames[i]);
  }
  front.flush();

  const auto got = front.drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  EXPECT_TRUE(front.settled());
  // The scripted worker ran out of failure budget and every slot ended on
  // the one real survivor.
  EXPECT_EQ(front.worker_view(2).health, HealthState::kDead);
  for (std::size_t s = 0; s < kSlots; ++s) EXPECT_EQ(front.owner_of(s), 0u);
  for (auto& w : workers) w->stop();
}

}  // namespace
