// The distributed fleet (src/dist/): framing round-trips and their paranoia,
// the reconnect backoff policy, the per-worker health state machine, and the
// end-to-end contracts — a worker cluster's egress is bit-exact against one
// sequential per-slot reference through batching, retries, duplicated
// batches, live slot rebalancing, engine hot-swap, and corrupt-restore
// rejection.  The seeded fault-injection schedules (kill mid-burst,
// reconnect storm) live in dist_chaos_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "banzai/state.h"
#include "core/compiler.h"
#include "dist/framing.h"
#include "dist/front.h"
#include "dist/health.h"
#include "dist/rpc.h"
#include "dist/worker.h"
#include "sim/partition.h"
#include "test_util.h"
#include "wire/codec.h"

namespace {

using banzai::Packet;
using dist::FailureDetector;
using dist::FramingError;
using dist::FrontConfig;
using dist::FrontTier;
using dist::HealthState;
using dist::MsgType;
using dist::WorkerConfig;
using dist::WorkerServer;
using wire::WireCodec;
using wire::WireSpec;

// ---- framing ---------------------------------------------------------------

TEST(DistFramingTest, HelloRoundTrips) {
  dist::Hello h;
  h.algorithm = "flowlets";
  h.num_slots = 16;
  h.header_bytes = 14;
  const auto bytes = dist::encode_hello(h);
  const dist::Hello back = dist::decode_hello(bytes.data(), bytes.size());
  EXPECT_EQ(back.version, dist::kProtocolVersion);
  EXPECT_EQ(back.algorithm, "flowlets");
  EXPECT_EQ(back.num_slots, 16u);
  EXPECT_EQ(back.header_bytes, 14u);
}

TEST(DistFramingTest, IngestBatchAndAckRoundTrip) {
  dist::IngestBatch b;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    dist::FrameRecord f;
    f.seq = i;
    f.slot = static_cast<std::uint32_t>(i % 2);
    f.bytes = {static_cast<std::uint8_t>(i), 0xAB};
    b.frames.push_back(std::move(f));
  }
  const auto eb = dist::encode_ingest_batch(b);
  const dist::IngestBatch bb = dist::decode_ingest_batch(eb.data(), eb.size());
  ASSERT_EQ(bb.frames.size(), 3u);
  EXPECT_EQ(bb.frames[2].seq, 3u);
  EXPECT_EQ(bb.frames[2].bytes, (std::vector<std::uint8_t>{3, 0xAB}));

  dist::IngestAck a;
  a.seqs = {1, 2, 3};
  a.statuses = {dist::FrameStatus::kAccepted, dist::FrameStatus::kDuplicate,
                dist::FrameStatus::kRejectTruncated};
  a.egress.push_back({7, {0xDE, 0xAD}});
  const auto ea = dist::encode_ingest_ack(a);
  const dist::IngestAck ab = dist::decode_ingest_ack(ea.data(), ea.size());
  ASSERT_EQ(ab.statuses.size(), 3u);
  EXPECT_EQ(ab.statuses[1], dist::FrameStatus::kDuplicate);
  ASSERT_EQ(ab.egress.size(), 1u);
  EXPECT_EQ(ab.egress[0].seq, 7u);
}

TEST(DistFramingTest, TruncatedAndTrailingBytesThrow) {
  dist::Hello h;
  h.algorithm = "x";
  const auto bytes = dist::encode_hello(h);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_THROW(dist::decode_hello(bytes.data(), cut), FramingError)
        << "cut at " << cut;
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(dist::decode_hello(trailing.data(), trailing.size()),
               FramingError);
}

TEST(DistFramingTest, StateStoreSerializationIsCanonicalAndValidated) {
  banzai::StateStore s;
  s.declare("zeta", 4, false);
  s.declare("alpha", 1, true);
  s.var("alpha").store(0, 42);
  s.var("zeta").store(2, -7);
  const auto blob = dist::serialize_state_store(s);
  // Canonical: a same-content store built in another order emits the same
  // bytes, so migration tests can compare blobs directly.
  banzai::StateStore t;
  t.declare("alpha", 1, true);
  t.declare("zeta", 4, false);
  t.var("alpha").store(0, 42);
  t.var("zeta").store(2, -7);
  EXPECT_EQ(blob, dist::serialize_state_store(t));

  const banzai::StateStore back =
      dist::deserialize_state_store(blob.data(), blob.size());
  EXPECT_TRUE(back.same_shape(s));
  EXPECT_EQ(back.var("alpha").load(0), 42);
  EXPECT_EQ(back.var("zeta").load(2), -7);

  // Corruption must throw before any store is returned.
  for (std::size_t cut = 1; cut < blob.size(); ++cut)
    EXPECT_THROW(dist::deserialize_state_store(blob.data(), cut),
                 FramingError);
  auto trailing = blob;
  trailing.push_back(0xFF);
  EXPECT_THROW(
      dist::deserialize_state_store(trailing.data(), trailing.size()),
      FramingError);
}

TEST(DistFramingTest, StateStoreDecoderRejectsSemanticGarbage) {
  // scalar flagged with more than one cell
  {
    std::vector<std::uint8_t> out;
    dist::Writer w(out);
    w.u32(1);
    w.str("x");
    w.u8(1);   // scalar
    w.u32(2);  // ...with two cells
    w.u32(0);
    w.u32(0);
    EXPECT_THROW(dist::deserialize_state_store(out.data(), out.size()),
                 FramingError);
  }
  // duplicate variable name
  {
    std::vector<std::uint8_t> out;
    dist::Writer w(out);
    w.u32(2);
    for (int i = 0; i < 2; ++i) {
      w.str("dup");
      w.u8(1);
      w.u32(1);
      w.u32(0);
    }
    EXPECT_THROW(dist::deserialize_state_store(out.data(), out.size()),
                 FramingError);
  }
  // zero cells
  {
    std::vector<std::uint8_t> out;
    dist::Writer w(out);
    w.u32(1);
    w.str("x");
    w.u8(0);
    w.u32(0);
    EXPECT_THROW(dist::deserialize_state_store(out.data(), out.size()),
                 FramingError);
  }
}

// ---- backoff ---------------------------------------------------------------

TEST(DistBackoffTest, BoundedExponentialWithDeterministicJitter) {
  const dist::Backoff b(dist::Millis(10), dist::Millis(400), 7);
  std::uint64_t prev_nominal = 0;
  for (std::uint32_t a = 0; a < 12; ++a) {
    const std::uint64_t nominal =
        std::min<std::uint64_t>(10ull << std::min(a, 20u), 400);
    const auto d = static_cast<std::uint64_t>(b.delay(a).count());
    EXPECT_GE(d, nominal / 2) << "attempt " << a;
    EXPECT_LT(d, nominal) << "attempt " << a;
    EXPECT_GE(nominal, prev_nominal);
    prev_nominal = nominal;
  }
  // Deterministic per seed, decorrelated across seeds.
  const dist::Backoff same(dist::Millis(10), dist::Millis(400), 7);
  const dist::Backoff other(dist::Millis(10), dist::Millis(400), 8);
  bool any_differ = false;
  for (std::uint32_t a = 0; a < 12; ++a) {
    EXPECT_EQ(b.delay(a).count(), same.delay(a).count());
    any_differ = any_differ || b.delay(a) != other.delay(a);
  }
  EXPECT_TRUE(any_differ) << "jitter ignores the seed";
}

// ---- health state machine --------------------------------------------------

TEST(DistHealthTest, WalksHealthySuspectDeadRecovering) {
  FailureDetector d(dist::HealthConfig{3});
  const auto now = dist::Clock::now();
  EXPECT_EQ(d.state(), HealthState::kHealthy);
  d.on_timeout(now);
  EXPECT_EQ(d.state(), HealthState::kSuspect);
  d.on_success(now);
  EXPECT_EQ(d.state(), HealthState::kHealthy);
  EXPECT_EQ(d.consecutive_failures(), 0u);
  d.on_timeout(now);
  d.on_error(now);
  EXPECT_EQ(d.state(), HealthState::kSuspect);
  d.on_timeout(now);
  EXPECT_EQ(d.state(), HealthState::kDead);
  EXPECT_FALSE(d.alive());
  EXPECT_EQ(d.deaths(), 1u);
  // Dead does not flap back on a stray success; only a reconnect handshake
  // re-admits, and the next success completes the recovery arc.
  d.on_success(now);
  EXPECT_EQ(d.state(), HealthState::kDead);
  d.on_reconnect(now);
  EXPECT_EQ(d.state(), HealthState::kRecovering);
  EXPECT_EQ(d.recoveries(), 0u);
  d.on_success(now);
  EXPECT_EQ(d.state(), HealthState::kHealthy);
  EXPECT_EQ(d.recoveries(), 1u);
  EXPECT_EQ(d.timeouts(), 3u);
  EXPECT_EQ(d.errors(), 1u);
}

// ---- cluster fixture -------------------------------------------------------

constexpr std::size_t kSlots = 8;

struct Cluster {
  domino::CompileResult compiled;
  std::shared_ptr<const WireCodec> rx, tx;
  std::vector<std::unique_ptr<WorkerServer>> workers;
  std::unique_ptr<FrontTier> front;
  std::vector<banzai::FieldId> flow_key;

  explicit Cluster(std::size_t n_workers, std::uint64_t seed = 1,
                   std::uint32_t dup_every = 0, std::uint32_t stall_every = 0)
      : compiled(domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"))) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    rx = std::make_shared<const WireCodec>(spec, ft);
    tx = std::make_shared<const WireCodec>(spec, ft, compiled.output_map());
    flow_key = {ft.id_of("sport"), ft.id_of("dport")};

    for (std::size_t w = 0; w < n_workers; ++w) {
      WorkerConfig wc;
      wc.algorithm = "flowlets";
      wc.num_slots = kSlots;
      wc.num_shards = 2;
      wc.batch_size = 32;
      wc.ring_capacity = 256;
      wc.flow_key = {"sport", "dport"};
      wc.stall_every = stall_every;
      wc.stall_for = dist::Millis(stall_every ? 300 : 0);
      workers.push_back(std::make_unique<WorkerServer>(compiled.machine(), rx,
                                                       tx, wc));
      workers.back()->start();
    }

    FrontConfig fc;
    fc.algorithm = "flowlets";
    fc.num_slots = kSlots;
    fc.flow_key = flow_key;
    fc.seed = seed;
    fc.dup_every = dup_every;
    fc.rpc_timeout = dist::Millis(stall_every ? 150 : 2000);
    fc.max_batch = 16;
    fc.dead_after = 2;
    front = std::make_unique<FrontTier>(rx, fc);
    for (auto& w : workers) front->add_worker(w->port());
    front->connect();
  }

  ~Cluster() {
    for (auto& w : workers) w->stop();
  }

  // The acceptance bar's reference: ONE sequential per-slot machine set fed
  // the same frames in offer order.
  std::vector<std::vector<std::uint8_t>> sequential_reference(
      const std::vector<std::vector<std::uint8_t>>& frames) {
    std::vector<banzai::Machine> slots;
    for (std::size_t v = 0; v < kSlots; ++v)
      slots.push_back(compiled.machine().clone());
    Packet scratch(compiled.machine().fields().size());
    std::vector<std::vector<std::uint8_t>> out;
    for (const auto& f : frames) {
      if (!rx->parse_exact(f.data(), f.size(), scratch).ok()) continue;
      std::uint64_t h = 0;
      for (banzai::FieldId fk : flow_key)
        h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(
                                      scratch.get(fk))));
      out.push_back(tx->deparse(slots[h % kSlots].process(scratch)));
    }
    return out;
  }

  std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n,
                                                     unsigned rng_seed) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    std::mt19937 rng(rng_seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t i = 0; i < n; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, static_cast<int>(i), f);
      Packet p(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
      frames.push_back(rx->deparse(p));
    }
    return frames;
  }
};

// ---- end-to-end contracts --------------------------------------------------

TEST(DistClusterTest, SingleWorkerMatchesSequentialReference) {
  Cluster c(1);
  const auto frames = c.make_frames(600, 11);
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  EXPECT_TRUE(c.front->settled());
}

TEST(DistClusterTest, FourWorkersMatchSequentialReferenceWithRejects) {
  Cluster c(4);
  auto frames = c.make_frames(1200, 23);
  // Interleave malformed frames: they must tombstone, not disturb order.
  const std::vector<std::uint8_t> runt = {0xD0};
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < frames.size(); i += 100) {
    frames.insert(frames.begin() + static_cast<std::ptrdiff_t>(i), runt);
    ++rejected;
  }
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_EQ(st.frames_offered, frames.size());
  EXPECT_EQ(st.rejects, rejected);
  EXPECT_EQ(st.frames_acked + st.rejects, frames.size());
}

TEST(DistClusterTest, DuplicatedBatchesAreFullyDeduplicated) {
  Cluster c(2, /*seed=*/3, /*dup_every=*/3);
  const auto frames = c.make_frames(500, 31);
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_GT(st.dup_acks, 0u) << "the dup schedule never fired";
  // A duplicate batch on a healthy connection carries no egress (its arrival
  // confirmed the original reply), so the window stays duplicate-free here;
  // the window-dedup path is exercised by post-kill replay below.
  EXPECT_EQ(st.egress_duplicates, 0u);
  EXPECT_EQ(st.frames_acked, frames.size());
}

TEST(DistClusterTest, LiveSlotRebalanceUnderLoadStaysBitExact) {
  Cluster c(3);
  const auto frames = c.make_frames(900, 47);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    c.front->offer(frames[i]);
    // Shuffle ownership mid-stream, repeatedly: slot s hops to a different
    // worker while its flows are in flight.
    if (i == 300) c.front->move_slot(0, c.front->owner_of(0) == 2 ? 0 : 2);
    if (i == 450) c.front->move_slot(3, c.front->owner_of(3) == 1 ? 0 : 1);
    if (i == 600) c.front->move_slot(0, 1);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_GE(st.slot_moves, 3u);
  // Every sent frame (originals + post-move replays) got exactly one status:
  // fresh apply or worker-side dedup.
  EXPECT_EQ(st.frames_acked + st.dup_acks, st.frames_sent);
}

TEST(DistClusterTest, EngineHotSwapMidStreamStaysBitExact) {
  Cluster c(2);
  const auto frames = c.make_frames(800, 53);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    c.front->offer(frames[i]);
    if (i == 250)
      c.front->swap_engine(
          static_cast<std::uint8_t>(banzai::ExecEngine::kKernel));
    if (i == 550)
      c.front->swap_engine(
          static_cast<std::uint8_t>(banzai::ExecEngine::kClosure));
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
}

TEST(DistClusterTest, WorkerKillMidBurstRecoversViaMigrationAndReplay) {
  Cluster c(3);
  const auto frames = c.make_frames(900, 61);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 300) c.front->checkpoint();
    if (i == 450) {
      c.workers[1]->kill();  // SIGKILL stand-in: all state gone
      c.front->evict(1);     // the harness knows; detectors would too, slower
    }
    c.front->offer(frames[i]);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
  const auto st = c.front->stats();
  EXPECT_EQ(st.migrations, 1u);
  EXPECT_GT(st.replays, 0u);
  EXPECT_GT(st.checkpoints, 0u);
  // Frames the dead worker acked after the checkpoint were replayed onto the
  // survivor, which re-applied them and re-emitted their egress — the
  // exactly-once window must have swallowed those.
  EXPECT_GT(st.egress_duplicates, 0u);
  EXPECT_EQ(c.front->worker_view(1).health, HealthState::kDead);
}

TEST(DistClusterTest, KillWithoutAnyCheckpointReplaysFromScratch) {
  Cluster c(2);
  const auto frames = c.make_frames(400, 67);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 200) {
      c.workers[0]->kill();
      c.front->evict(0);
    }
    c.front->offer(frames[i]);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
}

// ---- the corrupt-restore guard (raw protocol) ------------------------------

// The worker serves one connection at a time, so these tests skip the front
// tier entirely and speak the protocol over a raw Conn — which is the point:
// the restore guard must hold against arbitrary bytes, not just what a
// well-behaved FrontTier would send.
struct RawWorker {
  domino::CompileResult compiled;
  std::shared_ptr<const WireCodec> rx, tx;
  std::unique_ptr<WorkerServer> worker;
  std::vector<banzai::FieldId> flow_key;
  dist::Conn conn;
  std::uint64_t next_seq = 1;

  RawWorker()
      : compiled(domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"))) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    rx = std::make_shared<const WireCodec>(spec, ft);
    tx = std::make_shared<const WireCodec>(spec, ft, compiled.output_map());
    flow_key = {ft.id_of("sport"), ft.id_of("dport")};
    WorkerConfig wc;
    wc.algorithm = "flowlets";
    wc.num_slots = kSlots;
    wc.flow_key = {"sport", "dport"};
    worker =
        std::make_unique<WorkerServer>(compiled.machine(), rx, tx, wc);
    worker->start();
    conn = dist::connect_local(worker->port(), dist::Millis(2000));
    dist::Hello h;
    h.algorithm = "flowlets";
    h.num_slots = kSlots;
    h.header_bytes = static_cast<std::uint32_t>(rx->header_bytes());
    const auto resp = call(MsgType::kHello, dist::encode_hello(h));
    EXPECT_EQ(resp.type, MsgType::kHelloAck);
  }

  ~RawWorker() { worker->stop(); }

  dist::Message call(MsgType type, const std::vector<std::uint8_t>& payload) {
    const auto deadline = dist::Clock::now() + dist::Millis(2000);
    conn.send_msg(type, payload, deadline);
    return conn.recv_msg(deadline);
  }

  std::uint32_t slot_of(const std::vector<std::uint8_t>& frame) {
    Packet scratch(compiled.machine().fields().size());
    EXPECT_TRUE(rx->parse_exact(frame.data(), frame.size(), scratch).ok());
    std::uint64_t h = 0;
    for (banzai::FieldId fk : flow_key)
      h = netsim::mix64(
          h ^ static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(scratch.get(fk))));
    return static_cast<std::uint32_t>(h % kSlots);
  }

  std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n,
                                                     unsigned rng_seed) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    std::mt19937 rng(rng_seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t i = 0; i < n; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, static_cast<int>(i), f);
      Packet p(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
      frames.push_back(rx->deparse(p));
    }
    return frames;
  }

  // Ingests frames in one batch and returns the per-frame statuses.
  std::vector<dist::FrameStatus> ingest(
      const std::vector<std::vector<std::uint8_t>>& frames) {
    dist::IngestBatch b;
    for (const auto& f : frames) {
      dist::FrameRecord rec;
      rec.seq = next_seq++;
      rec.slot = slot_of(f);
      rec.bytes = f;
      b.frames.push_back(std::move(rec));
    }
    const auto resp =
        call(MsgType::kIngestBatch, dist::encode_ingest_batch(b));
    EXPECT_EQ(resp.type, MsgType::kIngestAck);
    const auto ack =
        dist::decode_ingest_ack(resp.payload.data(), resp.payload.size());
    EXPECT_EQ(ack.statuses.size(), frames.size());
    return ack.statuses;
  }

  std::vector<std::uint8_t> snapshot_blob(std::uint32_t slot) {
    dist::SnapshotReq req;
    req.slots.push_back(slot);
    const auto resp = call(MsgType::kSnapshotReq,
                           dist::encode_snapshot_req(req));
    EXPECT_EQ(resp.type, MsgType::kSnapshotResp);
    const auto sr =
        dist::decode_snapshot_resp(resp.payload.data(), resp.payload.size());
    EXPECT_EQ(sr.slots.size(), 1u);
    return sr.slots.at(0).state;
  }
};

TEST(DistRestoreGuardTest, CorruptBlobRejectsCleanlyAndStateIsUntouched) {
  RawWorker w;
  // Put real state into slot machines first.
  for (const dist::FrameStatus st : w.ingest(w.make_frames(200, 71)))
    ASSERT_EQ(st, dist::FrameStatus::kAccepted);
  const auto before = w.snapshot_blob(2);

  // (a) garbage bytes: framing-level corruption.
  {
    dist::RestoreReq req;
    dist::SlotState s;
    s.slot = 2;
    s.applied_seq = 999;
    s.state = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
    req.slots.push_back(std::move(s));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }
  // (b) well-formed blob of the wrong shape.
  {
    dist::RestoreReq req;
    dist::SlotState s;
    s.slot = 2;
    s.state = dist::serialize_state_store(banzai::StateStore{});
    req.slots.push_back(std::move(s));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }
  // (c) slot out of range.
  {
    dist::RestoreReq req;
    dist::SlotState s;
    s.slot = 999;
    s.state = before;
    req.slots.push_back(std::move(s));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }
  // (d) a batch where the LAST entry is corrupt must not apply the first:
  // all-or-nothing validation.
  {
    dist::RestoreReq req;
    dist::SlotState good;
    good.slot = 2;
    good.applied_seq = 1u << 20;  // would poison the dedup table if applied
    good.state = before;
    dist::SlotState bad;
    bad.slot = 3;
    bad.state = {0x00};
    req.slots.push_back(std::move(good));
    req.slots.push_back(std::move(bad));
    const auto resp =
        w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
    EXPECT_EQ(resp.type, MsgType::kError);
  }

  // The worker keeps serving and its state is byte-identical.
  const auto after = w.snapshot_blob(2);
  EXPECT_EQ(before, after);
  EXPECT_GE(w.worker->stats().restore_rejects, 4u);

  // And the dedup table was not poisoned by the rejected applied_seq: fresh
  // frames (seqs far below the rejected 2^20) still apply.
  for (const dist::FrameStatus st : w.ingest(w.make_frames(50, 73)))
    EXPECT_EQ(st, dist::FrameStatus::kAccepted);
}

TEST(DistRestoreGuardTest, ValidRestoreIsAcceptedAndApplied) {
  RawWorker w;
  for (const dist::FrameStatus st : w.ingest(w.make_frames(200, 79)))
    ASSERT_EQ(st, dist::FrameStatus::kAccepted);
  const auto blob = w.snapshot_blob(1);

  dist::RestoreReq req;
  dist::SlotState s;
  s.slot = 4;  // restore slot 1's state into slot 4 (same shape: same proto)
  s.applied_seq = 0;
  s.state = blob;
  req.slots.push_back(std::move(s));
  const auto resp =
      w.call(MsgType::kRestoreReq, dist::encode_restore_req(req));
  EXPECT_EQ(resp.type, MsgType::kRestoreAck);
  EXPECT_EQ(w.snapshot_blob(4), blob);
}

}  // namespace
