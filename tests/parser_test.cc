#include "core/parser.h"

#include <gtest/gtest.h>

#include "ir/diag.h"

namespace domino {
namespace {

// A minimal valid program to which test snippets are appended.
std::string with_body(const std::string& body,
                      const std::string& decls = "") {
  return "#define N 4\n"
         "struct Packet { int a; int b; int c; };\n"
         "int s = 0;\n"
         "int arr[N] = {0};\n" +
         decls + "void t(struct Packet pkt) {\n" + body + "\n}\n";
}

TEST(ParserTest, ParsesFlowletStructure) {
  Program p = parse(with_body("pkt.a = pkt.b + 1;"));
  EXPECT_EQ(p.defines.size(), 1u);
  EXPECT_EQ(p.defines[0].name, "N");
  EXPECT_EQ(p.defines[0].value, 4);
  EXPECT_EQ(p.packet_fields.size(), 3u);
  EXPECT_EQ(p.state_vars.size(), 2u);
  EXPECT_EQ(p.transaction.name, "t");
  EXPECT_EQ(p.transaction.packet_param, "pkt");
  ASSERT_EQ(p.transaction.body.size(), 1u);
}

TEST(ParserTest, DefineSubstitutionInExpressions) {
  Program p = parse(with_body("pkt.a = N;"));
  const Stmt& s = *p.transaction.body[0];
  EXPECT_EQ(s.value->kind, Expr::Kind::kIntLit);
  EXPECT_EQ(s.value->int_value, 4);
}

TEST(ParserTest, DefineUsedAsArraySize) {
  Program p = parse(with_body("pkt.a = 1;"));
  const StateDecl* arr = p.find_state("arr");
  ASSERT_NE(arr, nullptr);
  EXPECT_TRUE(arr->is_array);
  EXPECT_EQ(arr->size, 4);
}

TEST(ParserTest, NegativeDefine) {
  Program p = parse("#define M -3\n" + with_body("pkt.a = M;"));
  EXPECT_EQ(p.transaction.body[0]->value->int_value, -3);
}

TEST(ParserTest, ScalarInitializer) {
  Program p = parse(with_body("pkt.a = 1;", "int z = 7;\n"));
  EXPECT_EQ(p.find_state("z")->init, 7);
}

TEST(ParserTest, BraceInitializer) {
  Program p = parse(with_body("pkt.a = 1;", "int w[4] = {9};\n"));
  EXPECT_EQ(p.find_state("w")->init, 9);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  Program p = parse(with_body("pkt.a = pkt.b + pkt.c * 2;"));
  const Expr& e = *p.transaction.body[0]->value;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.bin_op, BinOp::kAdd);
  EXPECT_EQ(e.b->bin_op, BinOp::kMul);
}

TEST(ParserTest, PrecedenceRelationalOverLogical) {
  Program p = parse(with_body("pkt.a = pkt.b < 1 && pkt.c > 2;"));
  const Expr& e = *p.transaction.body[0]->value;
  EXPECT_EQ(e.bin_op, BinOp::kLAnd);
  EXPECT_EQ(e.a->bin_op, BinOp::kLt);
  EXPECT_EQ(e.b->bin_op, BinOp::kGt);
}

TEST(ParserTest, TernaryRightAssociative) {
  Program p =
      parse(with_body("pkt.a = pkt.b ? 1 : pkt.c ? 2 : 3;"));
  const Expr& e = *p.transaction.body[0]->value;
  ASSERT_EQ(e.kind, Expr::Kind::kTernary);
  EXPECT_EQ(e.b->kind, Expr::Kind::kTernary);
}

TEST(ParserTest, StateArrayAccess) {
  Program p = parse(with_body("arr[pkt.a] = arr[pkt.a] + 1;"));
  const Stmt& s = *p.transaction.body[0];
  EXPECT_EQ(s.target->kind, Expr::Kind::kState);
  ASSERT_NE(s.target->index, nullptr);
  EXPECT_EQ(s.target->index->kind, Expr::Kind::kField);
}

TEST(ParserTest, IncrementSugar) {
  Program p = parse(with_body("s++;"));
  const Stmt& s = *p.transaction.body[0];
  EXPECT_EQ(s.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->bin_op, BinOp::kAdd);
  EXPECT_EQ(s.value->b->int_value, 1);
}

TEST(ParserTest, CompoundPlusAssignSugar) {
  Program p = parse(with_body("s += pkt.a;"));
  const Stmt& s = *p.transaction.body[0];
  EXPECT_EQ(s.value->bin_op, BinOp::kAdd);
  EXPECT_EQ(s.value->a->kind, Expr::Kind::kState);
}

TEST(ParserTest, CompoundMinusAssignSugar) {
  Program p = parse(with_body("s -= 2;"));
  EXPECT_EQ(p.transaction.body[0]->value->bin_op, BinOp::kSub);
}

TEST(ParserTest, IfElseChain) {
  Program p = parse(with_body(
      "if (pkt.a) { pkt.b = 1; } else if (pkt.c) { pkt.b = 2; } else { "
      "pkt.b = 3; }"));
  const Stmt& s = *p.transaction.body[0];
  ASSERT_EQ(s.kind, Stmt::Kind::kIf);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, Stmt::Kind::kIf);
}

TEST(ParserTest, BracelessIfBody) {
  Program p = parse(with_body("if (pkt.a) pkt.b = 1;"));
  EXPECT_EQ(p.transaction.body[0]->then_body.size(), 1u);
}

TEST(ParserTest, IntrinsicCall) {
  Program p = parse(with_body("pkt.a = hash2(pkt.b, pkt.c) % N;"));
  const Expr& e = *p.transaction.body[0]->value;
  EXPECT_EQ(e.bin_op, BinOp::kMod);
  EXPECT_EQ(e.a->kind, Expr::Kind::kCall);
  EXPECT_EQ(e.a->name, "hash2");
}

TEST(ParserTest, UnaryMinusOnLiteralFolds) {
  Program p = parse(with_body("pkt.a = -5;"));
  EXPECT_EQ(p.transaction.body[0]->value->kind, Expr::Kind::kIntLit);
  EXPECT_EQ(p.transaction.body[0]->value->int_value, -5);
}

// ---- Table 1 restrictions -------------------------------------------------

void expect_parse_error(const std::string& src, const std::string& needle) {
  try {
    parse(src);
    FAIL() << "expected rejection: " << needle;
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ParserRestrictionTest, WhileLoopRejected) {
  expect_parse_error(with_body("while (1) { pkt.a = 1; }"), "iteration");
}

TEST(ParserRestrictionTest, ForLoopRejected) {
  expect_parse_error(with_body("for (;;) {}"), "iteration");
}

TEST(ParserRestrictionTest, DoWhileRejected) {
  expect_parse_error(with_body("do { pkt.a = 1; } while (1);"), "iteration");
}

TEST(ParserRestrictionTest, GotoRejected) {
  expect_parse_error(with_body("goto out;"), "goto");
}

TEST(ParserRestrictionTest, BreakRejected) {
  expect_parse_error(with_body("break;"), "break");
}

TEST(ParserRestrictionTest, ContinueRejected) {
  expect_parse_error(with_body("continue;"), "continue");
}

TEST(ParserRestrictionTest, ReturnRejected) {
  expect_parse_error(with_body("return;"), "return");
}

TEST(ParserRestrictionTest, PointerFieldRejected) {
  expect_parse_error("struct Packet { int *p; };\nvoid t(struct Packet pkt) {}",
                     "pointer");
}

TEST(ParserRestrictionTest, PointerStateRejected) {
  expect_parse_error(
      "struct Packet { int a; };\nint *p;\nvoid t(struct Packet pkt) {}",
      "pointer");
}

TEST(ParserRestrictionTest, LocalVariablesRejected) {
  expect_parse_error(with_body("int local = 3;"), "local variable");
}

TEST(ParserRestrictionTest, MultipleTransactionsRejected) {
  expect_parse_error(
      "struct Packet { int a; };\n"
      "void t1(struct Packet pkt) { pkt.a = 1; }\n"
      "void t2(struct Packet pkt) { pkt.a = 2; }\n",
      "policy");
}

TEST(ParserRestrictionTest, AssignToConstantRejected) {
  expect_parse_error(with_body("N = 3;"), "constant");
}

TEST(ParserTest, MissingTransactionRejected) {
  expect_parse_error("struct Packet { int a; };\n", "no packet transaction");
}

TEST(ParserTest, NonPacketStructRejected) {
  expect_parse_error("struct Foo { int a; };\n", "struct Packet");
}

TEST(ParserTest, ProgramRoundTripsThroughPrinter) {
  // str() output must itself be parseable (used by golden tests).
  Program p = parse(with_body(
      "pkt.a = hash2(pkt.b, pkt.c) % N;\n"
      "if (pkt.a > 1) { arr[pkt.a] = 2; } else { s = s + 1; }"));
  Program p2 = parse(p.str());
  EXPECT_EQ(p.str(), p2.str());
}

}  // namespace
}  // namespace domino
