// Tests for the public compiler API surface: compile() result contents,
// error phases for every failure class, LOC counting, and target lookup —
// the contract a downstream user programs against.
#include <gtest/gtest.h>

#include "algorithms/corpus.h"
#include "core/compiler.h"

namespace domino {
namespace {

TEST(CompilerApiTest, ResultCarriesAllArtifacts) {
  auto r = compile(algorithms::algorithm("flowlets").source,
                   *atoms::find_target("banzai-praw"));
  EXPECT_FALSE(r.program.packet_fields.empty());
  EXPECT_FALSE(r.normalized.branch_removed.transaction.body.empty());
  EXPECT_FALSE(r.normalized.flanked.transaction.body.empty());
  EXPECT_FALSE(r.normalized.ssa.transaction.body.empty());
  EXPECT_FALSE(r.normalized.tac.stmts.empty());
  EXPECT_GT(r.pvsm.num_stages(), 0u);
  EXPECT_GT(r.codegen.fitted.num_stages(), 0u);
  EXPECT_GT(r.machine().num_atoms(), 0u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(CompilerApiTest, ErrorPhasesDistinguishFailureClasses) {
  auto phase_of = [](const std::string& src) {
    try {
      compile(src, *atoms::find_target("banzai-pairs"));
    } catch (const CompileError& e) {
      return e.phase();
    }
    return CompilePhase::kNormalize;  // sentinel: "did not throw"
  };

  EXPECT_EQ(phase_of("struct Packet { int 5x; };"), CompilePhase::kParse);
  EXPECT_EQ(phase_of("struct Packet { int a; };\n"
                     "void t(struct Packet pkt) { pkt.zzz = 1; }"),
            CompilePhase::kSema);
  EXPECT_EQ(phase_of("struct Packet { int a; };\nint x = 1;\n"
                     "void t(struct Packet pkt) { x = x * x; }"),
            CompilePhase::kMapping);
  // Lex errors surface too.
  EXPECT_EQ(phase_of("struct Packet { int a; }; $"), CompilePhase::kLex);
}

TEST(CompilerApiTest, ParseAndCheckIsFrontEndOnly) {
  // CoDel fails code generation but must pass the front end.
  EXPECT_NO_THROW(parse_and_check(algorithms::algorithm("codel").source));
}

TEST(CompilerApiTest, CountLocSkipsCommentsAndBlanks) {
  EXPECT_EQ(count_loc("int a;\n\n// comment\nint b; // trail\n"), 2u);
  EXPECT_EQ(count_loc("/* multi\nline\ncomment */\nint a;\n"), 1u);
  EXPECT_EQ(count_loc(""), 0u);
}

TEST(CompilerApiTest, SynthesisOptionsPropagate) {
  CompileOptions opts;
  opts.synth.seed_constants = false;
  opts.synth.const_bits = 4;
  auto r = compile(algorithms::algorithm("sampled_netflow").source,
                   *atoms::find_target("banzai-ifelseraw"), opts);
  std::size_t cands = 0;
  for (const auto& rep : r.codegen.reports)
    cands += rep.synth_stats.candidates_tried;

  CompileOptions wide = opts;
  wide.synth.const_bits = 7;
  auto r2 = compile(algorithms::algorithm("sampled_netflow").source,
                    *atoms::find_target("banzai-ifelseraw"), wide);
  std::size_t cands2 = 0;
  for (const auto& rep : r2.codegen.reports)
    cands2 += rep.synth_stats.candidates_tried;
  EXPECT_GT(cands2, cands);
}

TEST(CompilerApiTest, TargetCatalogIsStable) {
  // Names downstream users script against.
  for (const char* name :
       {"banzai-write", "banzai-raw", "banzai-praw", "banzai-ifelseraw",
        "banzai-sub", "banzai-nested", "banzai-pairs", "banzai-pairs-lut"}) {
    EXPECT_TRUE(atoms::find_target(name).has_value()) << name;
  }
}

TEST(CompilerApiTest, RecompilationIsDeterministic) {
  const auto& src = algorithms::algorithm("conga").source;
  auto a = compile(src, *atoms::find_target("banzai-pairs"));
  auto b = compile(src, *atoms::find_target("banzai-pairs"));
  EXPECT_EQ(a.num_stages(), b.num_stages());
  EXPECT_EQ(a.normalized.tac.str(), b.normalized.tac.str());
  ASSERT_EQ(a.codegen.reports.size(), b.codegen.reports.size());
  for (std::size_t i = 0; i < a.codegen.reports.size(); ++i)
    EXPECT_EQ(a.codegen.reports[i].config, b.codegen.reports[i].config);
}

TEST(CompilerApiTest, MachineIsIndependentlyCopyConstructible) {
  auto r = compile(algorithms::algorithm("rcp").source,
                   *atoms::find_target("banzai-praw"));
  banzai::Machine copy = r.machine();
  // Processing via the copy mutates only the copy's state.
  banzai::Packet p(copy.fields().size());
  p.set(copy.fields().id_of("size_bytes"), 100);
  p.set(copy.fields().id_of("rtt"), 10);
  copy.process(p);
  EXPECT_EQ(copy.state().var("input_traffic_bytes").load_scalar(), 100);
  EXPECT_EQ(r.machine().state().var("input_traffic_bytes").load_scalar(), 0);
}

}  // namespace
}  // namespace domino
