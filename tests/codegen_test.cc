// Tests for code generation (§4.3): the all-or-nothing guarantee, resource
// fitting, computational limits, and machine structure invariants.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/corpus.h"
#include "core/compiler.h"

namespace domino {
namespace {

atoms::BanzaiTarget target_named(const std::string& n) {
  auto t = atoms::find_target(n);
  EXPECT_TRUE(t.has_value());
  return *t;
}

TEST(AllOrNothingTest, MappingFailureRejectsWholeProgram) {
  // One unmappable codelet (multiplication on state) poisons everything.
  const char* src =
      "struct Packet { int a; int ok; };\nint x = 1;\n"
      "void t(struct Packet pkt) { pkt.ok = pkt.a + 1; x = x * 3; }\n";
  try {
    compile(src, target_named("banzai-pairs"));
    FAIL() << "expected rejection";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.phase(), CompilePhase::kMapping);
  }
}

TEST(AllOrNothingTest, StatelessMulRejectedByAlu) {
  const char* src =
      "struct Packet { int a; int b; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = pkt.a * pkt.b; }\n";
  try {
    compile(src, target_named("banzai-pairs"));
    FAIL() << "expected rejection";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.phase(), CompilePhase::kMapping);
    EXPECT_NE(std::string(e.what()).find("stateless ALU"), std::string::npos);
  }
}

TEST(AllOrNothingTest, MathIntrinsicRejectedOnPaperTargets) {
  const char* src =
      "struct Packet { int a; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = isqrt(pkt.a); }\n";
  for (const auto& t : atoms::paper_targets())
    EXPECT_THROW(compile(src, t), CompileError) << t.name;
  // ... but accepted on the LUT-extended target, which has a math unit.
  EXPECT_NO_THROW(compile(src, atoms::lut_extended_target()));
}

TEST(AllOrNothingTest, DepthOverflowRejected) {
  // A dependent chain longer than the pipeline depth cannot be fitted.
  std::string body;
  std::string decl = "struct Packet { int f0; ";
  for (int i = 1; i <= 40; ++i) {
    decl += "int f" + std::to_string(i) + "; ";
    body += "pkt.f" + std::to_string(i) + " = pkt.f" + std::to_string(i - 1) +
            " + 1;\n";
  }
  decl += "};\n";
  const std::string src =
      decl + "void t(struct Packet pkt) {\n" + body + "}\n";
  try {
    compile(src, target_named("banzai-write"));
    FAIL() << "expected resource rejection";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.phase(), CompilePhase::kResource);
  }
}

TEST(AllOrNothingTest, WidthOverflowSpreadsAcrossStages) {
  // More independent stateful updates than stateful slots in one stage: the
  // compiler must spread them over extra stages rather than reject.
  std::string decls;
  std::string body;
  for (int i = 0; i < 15; ++i) {  // 15 > 10 stateful atoms per stage
    decls += "int s" + std::to_string(i) + " = 0;\n";
    body += "s" + std::to_string(i) + " += 1;\n";
  }
  const std::string src = "struct Packet { int a; };\n" + decls +
                          "void t(struct Packet pkt) {\n" + body + "}\n";
  CompileResult r = compile(src, target_named("banzai-raw"));
  EXPECT_GE(r.num_stages(), 2u);
  // No physical stage exceeds the stateful width.
  for (const auto& stage : r.codegen.fitted.stages) {
    std::size_t stateful = 0;
    for (const auto& c : stage)
      if (c.is_stateful()) ++stateful;
    EXPECT_LE(stateful, 10u);
  }
}

TEST(AllOrNothingTest, CompilationSucceedsOrThrowsNeverPartial) {
  // A failing program leaves no observable machine behind.
  const char* bad =
      "struct Packet { int a; };\nint x = 1;\n"
      "void t(struct Packet pkt) { x = x * x; }\n";
  for (const auto& t : atoms::paper_targets())
    EXPECT_THROW(compile(bad, t), CompileError);
}

// ---- machine structure invariants ------------------------------------------

TEST(MachineInvariantTest, EachStateVariableOwnedByExactlyOneAtom) {
  for (const auto& alg : algorithms::corpus()) {
    if (alg.paper_least_atom == "Doesn't map") continue;
    CompileResult r = compile(alg.source, target_named("banzai-pairs"));
    std::map<std::string, int> owners;
    for (const auto& stage : r.machine().stages())
      for (const auto& atom : stage.atoms)
        for (const auto& v : atom.state_vars) owners[v]++;
    for (const auto& [var, count] : owners)
      EXPECT_EQ(count, 1) << alg.name << ": state " << var << " owned by "
                          << count << " atoms";
  }
}

TEST(MachineInvariantTest, AtomOutputFieldsAreDisjointWithinStage) {
  for (const auto& alg : algorithms::corpus()) {
    if (alg.paper_least_atom == "Doesn't map") continue;
    CompileResult r = compile(alg.source, target_named("banzai-pairs"));
    for (const auto& stage : r.machine().stages()) {
      std::set<banzai::FieldId> written;
      for (const auto& atom : stage.atoms)
        for (auto f : atom.output_fields)
          EXPECT_TRUE(written.insert(f).second)
              << alg.name << ": two atoms in one stage write field " << f;
    }
  }
}

TEST(MachineInvariantTest, StateDeclarationsCarriedToMachine) {
  CompileResult r = compile(algorithms::algorithm("flowlets").source,
                            target_named("banzai-praw"));
  EXPECT_TRUE(r.machine().state().contains("last_time"));
  EXPECT_TRUE(r.machine().state().contains("saved_hop"));
  EXPECT_EQ(r.machine().state().var("last_time").size(), 8000u);
  EXPECT_FALSE(r.machine().state().var("last_time").is_scalar());
}

TEST(MachineInvariantTest, ReportsCoverEveryCodelet) {
  CompileResult r = compile(algorithms::algorithm("flowlets").source,
                            target_named("banzai-praw"));
  std::size_t codelets = 0;
  for (const auto& s : r.codegen.fitted.stages) codelets += s.size();
  EXPECT_EQ(r.codegen.reports.size(), codelets);
  int stateful = 0, hash_units = 0;
  for (const auto& rep : r.codegen.reports) {
    if (rep.stateful) {
      ++stateful;
      EXPECT_FALSE(rep.config.empty());
      EXPECT_EQ(rep.atom, "PRAW");
    }
    if (rep.intrinsic) {
      ++hash_units;
      EXPECT_EQ(rep.atom, "hash-unit");
    }
  }
  EXPECT_EQ(stateful, 2);
  EXPECT_EQ(hash_units, 2);
}

TEST(MachineInvariantTest, OutputMapCoversAllUserFields) {
  CompileResult r = compile(algorithms::algorithm("flowlets").source,
                            target_named("banzai-praw"));
  for (const auto& f : r.program.packet_fields) {
    ASSERT_TRUE(r.output_map().count(f.name)) << f.name;
    EXPECT_TRUE(r.machine().fields().try_id_of(r.output_map().at(f.name))
                    .has_value());
  }
}

TEST(CodegenTest, GuardableViaPolicyFieldsPreserved) {
  // Input fields keep their user-visible names in the machine field table so
  // match-action guards can key on them.
  CompileResult r = compile(algorithms::algorithm("flowlets").source,
                            target_named("banzai-praw"));
  EXPECT_TRUE(r.machine().fields().try_id_of("sport").has_value());
  EXPECT_TRUE(r.machine().fields().try_id_of("dport").has_value());
  EXPECT_TRUE(r.machine().fields().try_id_of("arrival").has_value());
}

TEST(CodegenTest, CompileTimingsRecorded) {
  CompileResult r = compile(algorithms::algorithm("conga").source,
                            target_named("banzai-pairs"));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(r.codegen.synth_seconds, 0.0);
  EXPECT_LE(r.codegen.synth_seconds, r.seconds);
}

}  // namespace
}  // namespace domino
