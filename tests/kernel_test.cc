// The engine-equivalence contract of the fused micro-op kernel
// (banzai/kernel.h): for every corpus algorithm, the kClosure and kKernel
// engines are bit-exact on every packet field and every state cell, across
// all four runtimes — per-packet Machine::process, batched BatchSim, the
// sharded Fleet/FleetService, and NetFabric-hosted nodes — on the seeded
// workloads, on a full-range fuzz corpus (wrap-around arithmetic, division
// by zero, hostile array indices), across snapshot/restore between engines,
// and under mid-stream engine flips.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/batch.h"
#include "banzai/fleet.h"
#include "banzai/service.h"
#include "core/compiler.h"
#include "sim/netfabric.h"
#include "sim/tracegen.h"

namespace {

using banzai::ExecEngine;
using banzai::Machine;
using banzai::Packet;

// Compiles `source` on the least expressive paper target that accepts it,
// falling back to the LUT-extended target (CoDel), or nullopt.
std::optional<domino::CompileResult> compile_least(const std::string& source) {
  for (const auto& t : atoms::paper_targets()) {
    try {
      return domino::compile(source, t);
    } catch (const domino::CompileError&) {
    }
  }
  try {
    return domino::compile(source, atoms::lut_extended_target());
  } catch (const domino::CompileError&) {
    return std::nullopt;
  }
}

Machine engine_clone(const Machine& proto, ExecEngine engine) {
  Machine m = proto.clone();
  m.set_engine(engine);
  return m;
}

// The algorithm's seeded workload as machine packets.
std::vector<Packet> workload_packets(const algorithms::AlgorithmInfo& alg,
                                     const banzai::FieldTable& fields, int n,
                                     unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, i, f);
    Packet p(fields.size());
    for (const auto& [k, v] : f)
      if (fields.try_id_of(k).has_value()) p.set(fields.id_of(k), v);
    out.push_back(std::move(p));
  }
  return out;
}

// Full-range random packets: every machine field (inputs, temporaries)
// uniformly over int32, plus adversarial extremes.  Exercises wrapping,
// x/0, INT_MIN/-1, shift masking and out-of-range state indices on both
// engines identically.
std::vector<Packet> fuzz_packets(const banzai::FieldTable& fields, int n,
                                 unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> full(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  const banzai::Value extremes[] = {
      0, 1, -1, std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max()};
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Packet p(fields.size());
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (rng() % 8 == 0)
        p.set(f, extremes[rng() % 5]);
      else
        p.set(f, static_cast<banzai::Value>(full(rng)));
    }
    out.push_back(std::move(p));
  }
  return out;
}

// Flow-key fields for sharded runs: the algorithm's declared inputs.
std::vector<banzai::FieldId> flow_key_of(const algorithms::AlgorithmInfo& alg,
                                         const banzai::FieldTable& fields) {
  std::vector<banzai::FieldId> key;
  for (const auto& name : alg.input_fields)
    if (auto id = fields.try_id_of(name)) key.push_back(*id);
  return key;
}

void expect_packets_equal(const std::vector<Packet>& a,
                          const std::vector<Packet>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << ": packet " << i;
}

TEST(KernelLoweringTest, EveryCompilableAlgorithmCarriesASealedKernel) {
  int compiled_count = 0;
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    ++compiled_count;
    const Machine& m = compiled->machine();
    ASSERT_NE(m.kernel(), nullptr) << alg.name;
    EXPECT_TRUE(m.kernel()->sealed()) << alg.name;
    EXPECT_EQ(m.kernel()->num_stages(), m.num_stages()) << alg.name;
    EXPECT_EQ(m.kernel()->num_ops(), m.num_atoms()) << alg.name;
    EXPECT_EQ(m.kernel()->num_fields(), m.fields().size()) << alg.name;
    // compile() selects the kernel engine by default…
    EXPECT_EQ(m.engine(), ExecEngine::kKernel) << alg.name;
    EXPECT_NE(m.active_kernel(), nullptr) << alg.name;
    // …and the closure path stays selectable as the reference.
    Machine closure = engine_clone(m, ExecEngine::kClosure);
    EXPECT_EQ(closure.active_kernel(), nullptr) << alg.name;
  }
  // Table 4: everything except CoDel maps to a paper target, and CoDel maps
  // to the LUT extension — the corpus-wide contract below rests on this.
  EXPECT_GE(compiled_count, 10);
}

TEST(KernelDifferentialTest, PerPacketCorpusWorkloads) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    Machine closure = engine_clone(compiled->machine(), ExecEngine::kClosure);
    Machine kernel = engine_clone(compiled->machine(), ExecEngine::kKernel);
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 4000, 7);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Packet a = closure.process(trace[i]);
      const Packet b = kernel.process(trace[i]);
      ASSERT_EQ(a, b) << alg.name << ": packet " << i;
    }
    EXPECT_TRUE(closure.state() == kernel.state()) << alg.name;
  }
}

TEST(KernelDifferentialTest, PerPacketFuzzCorpus) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    Machine closure = engine_clone(compiled->machine(), ExecEngine::kClosure);
    Machine kernel = engine_clone(compiled->machine(), ExecEngine::kKernel);
    const auto trace = fuzz_packets(compiled->machine().fields(), 2500, 99);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Packet a = closure.process(trace[i]);
      const Packet b = kernel.process(trace[i]);
      ASSERT_EQ(a, b) << alg.name << ": fuzz packet " << i;
    }
    EXPECT_TRUE(closure.state() == kernel.state()) << alg.name;
  }
}

TEST(KernelDifferentialTest, BatchedAcrossBatchSizes) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 3000, 11);
    for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                              std::size_t{256}}) {
      Machine closure =
          engine_clone(compiled->machine(), ExecEngine::kClosure);
      Machine kernel = engine_clone(compiled->machine(), ExecEngine::kKernel);
      banzai::BatchSim a(closure, batch), b(kernel, batch);
      a.enqueue_all(trace);
      b.enqueue_all(trace);
      a.run();
      b.run();
      expect_packets_equal(a.egress(), b.egress(),
                           alg.name + " batch=" + std::to_string(batch));
      EXPECT_TRUE(closure.state() == kernel.state())
          << alg.name << " batch=" << batch;
    }
  }
}

TEST(KernelDifferentialTest, ShardedFleet) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    const auto key = flow_key_of(alg, compiled->machine().fields());
    if (key.empty()) continue;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 3000, 13);
    for (std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
      banzai::FleetConfig cfg;
      cfg.num_shards = shards;
      cfg.batch_size = 64;
      cfg.parallel = true;
      cfg.flow_key = key;
      banzai::Fleet a(engine_clone(compiled->machine(), ExecEngine::kClosure),
                      cfg);
      banzai::Fleet b(engine_clone(compiled->machine(), ExecEngine::kKernel),
                      cfg);
      const auto ra = a.run(trace).egress_in_order();
      const auto rb = b.run(trace).egress_in_order();
      expect_packets_equal(ra, rb,
                           alg.name + " shards=" + std::to_string(shards));
      for (std::size_t s = 0; s < shards; ++s)
        EXPECT_TRUE(a.shard_machine(s).state() == b.shard_machine(s).state())
            << alg.name << " shard " << s;
    }
  }
}

TEST(KernelDifferentialTest, StreamingFleetService) {
  // The always-on runtime: same ShardCore, live ingest threads.  Egress is
  // released in global arrival order, so the two engines must deliver
  // identical packet sequences and identical per-slot state.
  for (const char* name : {"flowlets", "heavy_hitters", "stfq"}) {
    const auto& alg = algorithms::algorithm(name);
    auto compiled = compile_least(alg.source);
    ASSERT_TRUE(compiled.has_value()) << name;
    const auto key = flow_key_of(alg, compiled->machine().fields());
    ASSERT_FALSE(key.empty()) << name;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 2000, 17);

    banzai::ServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.num_slots = 4;
    cfg.batch_size = 64;
    cfg.backpressure = banzai::Backpressure::kBlock;
    cfg.flow_key = key;

    std::vector<Packet> egress[2];
    banzai::ServiceSnapshot snaps[2];
    const ExecEngine engines[] = {ExecEngine::kClosure, ExecEngine::kKernel};
    for (int e = 0; e < 2; ++e) {
      banzai::FleetService svc(engine_clone(compiled->machine(), engines[e]),
                               cfg);
      svc.start();
      svc.ingest_all(trace);
      svc.stop();
      egress[e] = svc.drain_egress();
      snaps[e] = svc.snapshot();
    }
    expect_packets_equal(egress[0], egress[1], std::string(name) + " service");
    ASSERT_EQ(snaps[0].slot_state.size(), snaps[1].slot_state.size());
    for (std::size_t s = 0; s < snaps[0].slot_state.size(); ++s)
      EXPECT_TRUE(snaps[0].slot_state[s] == snaps[1].slot_state[s])
          << name << " slot " << s;
  }
}

TEST(KernelDifferentialTest, FabricHostedNodes) {
  // NetFabric runs hosted machines through Machine::process (and ShardCore
  // for multi-pipeline nodes); a kernel-engined ingress must yield the same
  // deliveries, paths, marks and final state as the closure engine.
  netsim::FlowTraceConfig tc;
  tc.num_packets = 3000;
  tc.num_flows = 40;
  tc.zipf_skew = 1.1;
  tc.seed = 21;
  auto trace = netsim::generate_flow_trace(tc);
  netsim::sort_by_arrival(trace);

  for (const char* name : {"flowlets", "conga"}) {
    auto compiled = compile_least(algorithms::algorithm(name).source);
    ASSERT_TRUE(compiled.has_value()) << name;
    const auto binding = netsim::FieldBinding::resolve(
        compiled->machine().fields(), compiled->output_map());

    netsim::NetFabricConfig fc;
    fc.num_leaves = 2;
    fc.num_spines = 2;
    fc.port.bytes_per_tick = 900;
    netsim::NetFabric a(fc), b(fc);
    for (int leaf = 0; leaf < fc.num_leaves; ++leaf) {
      a.host_ingress(leaf,
                     engine_clone(compiled->machine(), ExecEngine::kClosure),
                     binding);
      b.host_ingress(leaf,
                     engine_clone(compiled->machine(), ExecEngine::kKernel),
                     binding);
    }
    for (const auto& tp : trace) {
      const auto ends =
          netsim::flow_endpoints(tp.flow_id, fc.num_leaves, /*salt=*/5);
      a.inject(tp, ends.first, ends.second);
      b.inject(tp, ends.first, ends.second);
    }
    a.run();
    b.run();
    ASSERT_EQ(a.delivered().size(), b.delivered().size()) << name;
    for (std::size_t i = 0; i < a.delivered().size(); ++i) {
      const auto& da = a.delivered()[i];
      const auto& db = b.delivered()[i];
      ASSERT_EQ(da.path, db.path) << name << ": packet " << i;
      ASSERT_EQ(da.delivered_tick, db.delivered_tick) << name << ": " << i;
      ASSERT_EQ(da.ingress_mark, db.ingress_mark) << name << ": " << i;
      ASSERT_EQ(da.ingress_view, db.ingress_view) << name << ": " << i;
    }
    EXPECT_EQ(a.stats().dropped, b.stats().dropped) << name;
    for (int leaf = 0; leaf < fc.num_leaves; ++leaf)
      EXPECT_TRUE(a.ingress_machine(leaf)->state() ==
                  b.ingress_machine(leaf)->state())
          << name << " leaf " << leaf;
  }
}

TEST(KernelDifferentialTest, SnapshotRestoreMigratesAcrossEngines) {
  // State checkpointed on one engine must resume bit-exactly on the other,
  // in both directions — the representation of persistent state is shared.
  for (const char* name : {"flowlets", "heavy_hitters", "conga"}) {
    const auto& alg = algorithms::algorithm(name);
    auto compiled = compile_least(alg.source);
    ASSERT_TRUE(compiled.has_value()) << name;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 2000, 29);
    const std::size_t half = trace.size() / 2;

    // Reference: the whole trace on the closure engine.
    Machine ref = engine_clone(compiled->machine(), ExecEngine::kClosure);
    std::vector<Packet> ref_out;
    for (const auto& p : trace) ref_out.push_back(ref.process(p));

    for (int dir = 0; dir < 2; ++dir) {
      const ExecEngine first = dir == 0 ? ExecEngine::kClosure
                                        : ExecEngine::kKernel;
      const ExecEngine second = dir == 0 ? ExecEngine::kKernel
                                         : ExecEngine::kClosure;
      Machine m1 = engine_clone(compiled->machine(), first);
      std::vector<Packet> out;
      for (std::size_t i = 0; i < half; ++i)
        out.push_back(m1.process(trace[i]));
      Machine m2 = engine_clone(compiled->machine(), second);
      m2.restore_state(m1.snapshot_state());
      for (std::size_t i = half; i < trace.size(); ++i)
        out.push_back(m2.process(trace[i]));
      expect_packets_equal(out, ref_out,
                           std::string(name) + " dir=" + std::to_string(dir));
      EXPECT_TRUE(m2.state() == ref.state()) << name << " dir=" << dir;
    }
  }
}

TEST(KernelDifferentialTest, EngineFlipMidStreamIsSeamless) {
  // Both paths read and write the same FieldTable ids and StateStore, so
  // toggling the engine between packets must be invisible.
  const auto& alg = algorithms::algorithm("flowlets");
  auto compiled = compile_least(alg.source);
  ASSERT_TRUE(compiled.has_value());
  const auto trace =
      workload_packets(alg, compiled->machine().fields(), 3000, 31);

  Machine ref = engine_clone(compiled->machine(), ExecEngine::kClosure);
  Machine flip = engine_clone(compiled->machine(), ExecEngine::kKernel);
  std::mt19937 rng(5);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (rng() % 64 == 0)
      flip.set_engine(flip.engine() == ExecEngine::kKernel
                          ? ExecEngine::kClosure
                          : ExecEngine::kKernel);
    ASSERT_EQ(ref.process(trace[i]), flip.process(trace[i])) << "packet " << i;
  }
  EXPECT_TRUE(ref.state() == flip.state());
}

TEST(KernelGuardTest, RunBeforeSealAndNarrowPacketsAreRejected) {
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
  banzai::StateStore store;
  Packet p(1);
  EXPECT_THROW(pipe.run(p, store), std::logic_error);
  pipe.seal(4);
  Packet narrow(2);  // program addresses 4 fields
  EXPECT_THROW(pipe.run(narrow, store), std::invalid_argument);
}

TEST(KernelGuardTest, AddingAnOpBeforeTheFirstStageThrows) {
  banzai::CompiledPipeline pipe;
  EXPECT_THROW(pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1)),
               std::logic_error);
}

TEST(KernelGuardTest, SealRejectsFieldIdsBeyondTheProgramWidth) {
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  pipe.add_alu(banzai::KOp::kMov, 3, banzai::KSrc::field_ref(1));
  EXPECT_THROW(pipe.seal(2), std::logic_error) << "dst 3 >= 2 fields";
}

TEST(KernelGuardTest, SealRejectsSharedStateOwnership) {
  // §2.3 state locality: a state variable owned by two ops would have its
  // update sequence reordered by op-major batching — seal must refuse.
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  banzai::StatefulOp a;
  a.num_states = 1;
  a.slots[0].var = pipe.intern_state("x");
  pipe.add_stateful(a, {{0, 0, true}});
  pipe.begin_stage();
  banzai::StatefulOp b = a;
  pipe.add_stateful(b, {{1, 0, true}});
  EXPECT_THROW(pipe.seal(2), std::logic_error);
}

TEST(KernelGuardTest, SealRejectsIntraStageHazards) {
  // Two ops of one stage writing the same field…
  {
    banzai::CompiledPipeline pipe;
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(2));
    EXPECT_THROW(pipe.seal(1), std::logic_error);
  }
  // …and a later op reading an earlier op's output within one stage are both
  // violations of the stage-parallel contract the lowering depends on.
  {
    banzai::CompiledPipeline pipe;
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
    pipe.add_alu(banzai::KOp::kMov, 1, banzai::KSrc::field_ref(0));
    EXPECT_THROW(pipe.seal(2), std::logic_error);
  }
  // The same two ops in different stages are plain dataflow.
  {
    banzai::CompiledPipeline pipe;
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 1, banzai::KSrc::field_ref(0));
    pipe.seal(2);
    banzai::StateStore store;
    Packet p(2);
    pipe.run(p, store);
    EXPECT_EQ(p.get(0), 1);
    EXPECT_EQ(p.get(1), 1);
  }
}

}  // namespace
