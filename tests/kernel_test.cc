// The engine-equivalence contract of the compiled execution paths
// (banzai/kernel.h, banzai/native.h): for every corpus algorithm, the
// kClosure, kKernel and kNative engines are bit-exact on every packet field
// and every state cell, across all four runtimes — per-packet
// Machine::process, batched BatchSim, the sharded Fleet/FleetService, and
// NetFabric-hosted nodes — on the seeded workloads, on a full-range fuzz
// corpus (wrap-around arithmetic, division by zero, hostile array indices),
// across snapshot/restore between engines, and under mid-stream engine
// flips.  The native engine participates whenever the host toolchain can
// build it (the machines record a fallback reason otherwise); the loader
// itself is covered in tests/native_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/batch.h"
#include "banzai/fleet.h"
#include "banzai/service.h"
#include "core/compiler.h"
#include "sim/netfabric.h"
#include "sim/tracegen.h"

namespace {

using banzai::ExecEngine;
using banzai::Machine;
using banzai::Packet;

const char* engine_name(ExecEngine e) {
  switch (e) {
    case ExecEngine::kClosure: return "closure";
    case ExecEngine::kKernel: return "kernel";
    case ExecEngine::kNative: return "native";
  }
  return "?";
}

// Compile with the native engine requested: machines carry the closure and
// kernel paths always, plus the AOT pipeline when the host toolchain exists.
domino::CompileOptions native_options() {
  domino::CompileOptions opts;
  opts.engine = ExecEngine::kNative;
  return opts;
}

// Compiles `source` on the least expressive paper target that accepts it,
// falling back to the LUT-extended target (CoDel), or nullopt.
std::optional<domino::CompileResult> compile_least(const std::string& source) {
  for (const auto& t : atoms::paper_targets()) {
    try {
      return domino::compile(source, t, native_options());
    } catch (const domino::CompileError&) {
    }
  }
  try {
    return domino::compile(source, atoms::lut_extended_target(),
                           native_options());
  } catch (const domino::CompileError&) {
    return std::nullopt;
  }
}

// Every engine this machine can actually execute: closure and kernel always,
// native only when the loader attached a pipeline (no toolchain -> the
// machine records a fallback reason and the differential narrows to two).
std::vector<ExecEngine> engines_of(const Machine& m) {
  std::vector<ExecEngine> v{ExecEngine::kClosure, ExecEngine::kKernel};
  if (m.native() != nullptr) v.push_back(ExecEngine::kNative);
  return v;
}

Machine engine_clone(const Machine& proto, ExecEngine engine) {
  Machine m = proto.clone();
  m.set_engine(engine);
  return m;
}

// The algorithm's seeded workload as machine packets.
std::vector<Packet> workload_packets(const algorithms::AlgorithmInfo& alg,
                                     const banzai::FieldTable& fields, int n,
                                     unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, i, f);
    Packet p(fields.size());
    for (const auto& [k, v] : f)
      if (fields.try_id_of(k).has_value()) p.set(fields.id_of(k), v);
    out.push_back(std::move(p));
  }
  return out;
}

// Full-range random packets: every machine field (inputs, temporaries)
// uniformly over int32, plus adversarial extremes.  Exercises wrapping,
// x/0, INT_MIN/-1, shift masking and out-of-range state indices on all
// engines identically.
std::vector<Packet> fuzz_packets(const banzai::FieldTable& fields, int n,
                                 unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> full(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  const banzai::Value extremes[] = {
      0, 1, -1, std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max()};
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Packet p(fields.size());
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (rng() % 8 == 0)
        p.set(f, extremes[rng() % 5]);
      else
        p.set(f, static_cast<banzai::Value>(full(rng)));
    }
    out.push_back(std::move(p));
  }
  return out;
}

// Flow-key fields for sharded runs: the algorithm's declared inputs.
std::vector<banzai::FieldId> flow_key_of(const algorithms::AlgorithmInfo& alg,
                                         const banzai::FieldTable& fields) {
  std::vector<banzai::FieldId> key;
  for (const auto& name : alg.input_fields)
    if (auto id = fields.try_id_of(name)) key.push_back(*id);
  return key;
}

void expect_packets_equal(const std::vector<Packet>& a,
                          const std::vector<Packet>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << ": packet " << i;
}

TEST(KernelLoweringTest, EveryCompilableAlgorithmCarriesASealedKernel) {
  int compiled_count = 0;
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    ++compiled_count;
    const Machine& m = compiled->machine();
    ASSERT_NE(m.kernel(), nullptr) << alg.name;
    EXPECT_TRUE(m.kernel()->sealed()) << alg.name;
    EXPECT_EQ(m.kernel()->num_stages(), m.num_stages()) << alg.name;
    EXPECT_EQ(m.kernel()->num_ops(), m.num_atoms()) << alg.name;
    EXPECT_EQ(m.kernel()->num_fields(), m.fields().size()) << alg.name;
    // compile() honors the requested engine…
    EXPECT_EQ(m.engine(), ExecEngine::kNative) << alg.name;
    // …and either the native pipeline is attached or the reason it is not
    // was recorded (never both, never neither).
    EXPECT_NE(m.native() != nullptr, !m.native_fallback_reason().empty())
        << alg.name << ": " << m.native_fallback_reason();
    // The closure path stays selectable as the reference.
    Machine closure = engine_clone(m, ExecEngine::kClosure);
    EXPECT_EQ(closure.active_kernel(), nullptr) << alg.name;
    EXPECT_EQ(closure.active_native(), nullptr) << alg.name;
  }
  // Table 4: everything except CoDel maps to a paper target, and CoDel maps
  // to the LUT extension — the corpus-wide contract below rests on this.
  EXPECT_GE(compiled_count, 10);
}

TEST(KernelLoweringTest, NativeEngineIsAvailableOrSkipsLoudly) {
  auto compiled = compile_least(algorithms::algorithm("flowlets").source);
  ASSERT_TRUE(compiled.has_value());
  const Machine& m = compiled->machine();
  if (m.native() == nullptr)
    GTEST_SKIP() << "native engine unavailable on this host — differentials "
                    "cover closure/kernel only.  Reason: "
                 << m.native_fallback_reason();
  EXPECT_NE(m.active_native(), nullptr);
  EXPECT_EQ(m.native()->num_fields(), m.fields().size());
  EXPECT_EQ(m.native()->num_state_vars(), m.kernel()->num_state_vars());
}

TEST(KernelLoweringTest, DisassemblyNamesEveryOpAndStateVar) {
  auto compiled = compile_least(algorithms::algorithm("flowlets").source);
  ASSERT_TRUE(compiled.has_value());
  const auto* kernel = compiled->machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string text = kernel->str();
  for (std::size_t si = 0; si < kernel->num_stages(); ++si)
    EXPECT_NE(text.find("stage " + std::to_string(si)), std::string::npos);
  for (const auto& name : kernel->state_names())
    EXPECT_NE(text.find(name), std::string::npos) << name;
  // One line per op, addressed by index.
  EXPECT_NE(text.find("[" + std::to_string(kernel->num_ops() - 1) + "]"),
            std::string::npos);
}

TEST(KernelDifferentialTest, PerPacketCorpusWorkloads) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 4000, 7);
    for (ExecEngine engine : engines_of(compiled->machine())) {
      if (engine == ExecEngine::kClosure) continue;
      Machine closure = engine_clone(compiled->machine(), ExecEngine::kClosure);
      Machine under = engine_clone(compiled->machine(), engine);
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const Packet a = closure.process(trace[i]);
        const Packet b = under.process(trace[i]);
        ASSERT_EQ(a, b) << alg.name << " [" << engine_name(engine)
                        << "]: packet " << i;
      }
      EXPECT_TRUE(closure.state() == under.state())
          << alg.name << " [" << engine_name(engine) << "]";
    }
  }
}

TEST(KernelDifferentialTest, PerPacketFuzzCorpus) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    const auto trace = fuzz_packets(compiled->machine().fields(), 2500, 99);
    for (ExecEngine engine : engines_of(compiled->machine())) {
      if (engine == ExecEngine::kClosure) continue;
      Machine closure = engine_clone(compiled->machine(), ExecEngine::kClosure);
      Machine under = engine_clone(compiled->machine(), engine);
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const Packet a = closure.process(trace[i]);
        const Packet b = under.process(trace[i]);
        ASSERT_EQ(a, b) << alg.name << " [" << engine_name(engine)
                        << "]: fuzz packet " << i;
      }
      EXPECT_TRUE(closure.state() == under.state())
          << alg.name << " [" << engine_name(engine) << "]";
    }
  }
}

TEST(KernelDifferentialTest, BatchedAcrossBatchSizes) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 3000, 11);
    for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                              std::size_t{256}}) {
      Machine closure =
          engine_clone(compiled->machine(), ExecEngine::kClosure);
      banzai::BatchSim ref(closure, batch);
      ref.enqueue(trace);
      ref.run();
      for (ExecEngine engine : engines_of(compiled->machine())) {
        if (engine == ExecEngine::kClosure) continue;
        for (banzai::BatchDispatch dispatch :
             {banzai::BatchDispatch::kRows, banzai::BatchDispatch::kColumnar}) {
          const std::string tag =
              alg.name + " [" + engine_name(engine) +
              "] batch=" + std::to_string(batch) +
              (dispatch == banzai::BatchDispatch::kColumnar ? " cols" : " rows");
          Machine under = engine_clone(compiled->machine(), engine);
          banzai::BatchSim sim(under, batch, dispatch);
          sim.enqueue(trace);
          sim.run();
          expect_packets_equal(ref.egress(), sim.egress(), tag);
          EXPECT_TRUE(closure.state() == under.state()) << tag;
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, ShardedFleet) {
  for (const auto& alg : algorithms::corpus()) {
    auto compiled = compile_least(alg.source);
    if (!compiled.has_value()) continue;
    const auto key = flow_key_of(alg, compiled->machine().fields());
    if (key.empty()) continue;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 3000, 13);
    for (std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
      banzai::FleetConfig cfg;
      cfg.num_shards = shards;
      cfg.batch_size = 64;
      cfg.parallel = true;
      cfg.flow_key = key;
      banzai::Fleet ref(engine_clone(compiled->machine(), ExecEngine::kClosure),
                        cfg);
      const auto ra = ref.run(trace).egress_in_order();
      for (ExecEngine engine : engines_of(compiled->machine())) {
        if (engine == ExecEngine::kClosure) continue;
        banzai::Fleet under(engine_clone(compiled->machine(), engine), cfg);
        const auto rb = under.run(trace).egress_in_order();
        expect_packets_equal(ra, rb,
                             alg.name + " [" + engine_name(engine) +
                                 "] shards=" + std::to_string(shards));
        for (std::size_t s = 0; s < shards; ++s)
          EXPECT_TRUE(ref.shard_machine(s).state() ==
                      under.shard_machine(s).state())
              << alg.name << " [" << engine_name(engine) << "] shard " << s;
      }
    }
  }
}

TEST(KernelDifferentialTest, StreamingFleetService) {
  // The always-on runtime: same ShardCore, live ingest threads.  Egress is
  // released in global arrival order, so all engines must deliver identical
  // packet sequences and identical per-slot state.
  for (const char* name : {"flowlets", "heavy_hitters", "stfq"}) {
    const auto& alg = algorithms::algorithm(name);
    auto compiled = compile_least(alg.source);
    ASSERT_TRUE(compiled.has_value()) << name;
    const auto key = flow_key_of(alg, compiled->machine().fields());
    ASSERT_FALSE(key.empty()) << name;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 2000, 17);

    banzai::ServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.num_slots = 4;
    cfg.batch_size = 64;
    cfg.backpressure = banzai::Backpressure::kBlock;
    cfg.flow_key = key;

    const auto engines = engines_of(compiled->machine());
    std::vector<std::vector<Packet>> egress(engines.size());
    std::vector<banzai::ServiceSnapshot> snaps(engines.size());
    for (std::size_t e = 0; e < engines.size(); ++e) {
      banzai::FleetService svc(engine_clone(compiled->machine(), engines[e]),
                               cfg);
      svc.start();
      svc.ingest_all(trace);
      svc.stop();
      egress[e] = svc.drain_egress();
      snaps[e] = svc.snapshot();
    }
    for (std::size_t e = 1; e < engines.size(); ++e) {
      expect_packets_equal(egress[0], egress[e],
                           std::string(name) + " service [" +
                               engine_name(engines[e]) + "]");
      ASSERT_EQ(snaps[0].slot_state.size(), snaps[e].slot_state.size());
      for (std::size_t s = 0; s < snaps[0].slot_state.size(); ++s)
        EXPECT_TRUE(snaps[0].slot_state[s] == snaps[e].slot_state[s])
            << name << " [" << engine_name(engines[e]) << "] slot " << s;
    }
  }
}

TEST(KernelDifferentialTest, FabricHostedNodes) {
  // NetFabric runs hosted machines through Machine::process (and ShardCore
  // for multi-pipeline nodes); a kernel- or native-engined ingress must
  // yield the same deliveries, paths, marks and final state as the closure
  // engine.
  netsim::FlowTraceConfig tc;
  tc.num_packets = 3000;
  tc.num_flows = 40;
  tc.zipf_skew = 1.1;
  tc.seed = 21;
  auto trace = netsim::generate_flow_trace(tc);
  netsim::sort_by_arrival(trace);

  for (const char* name : {"flowlets", "conga"}) {
    auto compiled = compile_least(algorithms::algorithm(name).source);
    ASSERT_TRUE(compiled.has_value()) << name;
    const auto binding = netsim::FieldBinding::resolve(
        compiled->machine().fields(), compiled->output_map());

    netsim::NetFabricConfig fc;
    fc.num_leaves = 2;
    fc.num_spines = 2;
    fc.port.bytes_per_tick = 900;

    auto run_fabric = [&](ExecEngine engine) {
      auto fabric = std::make_unique<netsim::NetFabric>(fc);
      for (int leaf = 0; leaf < fc.num_leaves; ++leaf)
        fabric->host_ingress(leaf, engine_clone(compiled->machine(), engine),
                             binding);
      for (const auto& tp : trace) {
        const auto ends =
            netsim::flow_endpoints(tp.flow_id, fc.num_leaves, /*salt=*/5);
        fabric->inject(tp, ends.first, ends.second);
      }
      fabric->run();
      return fabric;
    };

    auto ref = run_fabric(ExecEngine::kClosure);
    for (ExecEngine engine : engines_of(compiled->machine())) {
      if (engine == ExecEngine::kClosure) continue;
      auto under = run_fabric(engine);
      ASSERT_EQ(ref->delivered().size(), under->delivered().size())
          << name << " [" << engine_name(engine) << "]";
      for (std::size_t i = 0; i < ref->delivered().size(); ++i) {
        const auto& da = ref->delivered()[i];
        const auto& db = under->delivered()[i];
        ASSERT_EQ(da.path, db.path)
            << name << " [" << engine_name(engine) << "]: packet " << i;
        ASSERT_EQ(da.delivered_tick, db.delivered_tick)
            << name << " [" << engine_name(engine) << "]: " << i;
        ASSERT_EQ(da.ingress_mark, db.ingress_mark)
            << name << " [" << engine_name(engine) << "]: " << i;
        ASSERT_EQ(da.ingress_view, db.ingress_view)
            << name << " [" << engine_name(engine) << "]: " << i;
      }
      EXPECT_EQ(ref->stats().dropped, under->stats().dropped)
          << name << " [" << engine_name(engine) << "]";
      for (int leaf = 0; leaf < fc.num_leaves; ++leaf)
        EXPECT_TRUE(ref->ingress_machine(leaf)->state() ==
                    under->ingress_machine(leaf)->state())
            << name << " [" << engine_name(engine) << "] leaf " << leaf;
    }
  }
}

TEST(KernelDifferentialTest, SnapshotRestoreMigratesAcrossEngines) {
  // State checkpointed on one engine must resume bit-exactly on any other,
  // in every direction — the representation of persistent state is shared,
  // and restore_state() must invalidate the binding cache (a stale pointer
  // into the replaced map would read freed memory; ASan watches this path).
  for (const char* name : {"flowlets", "heavy_hitters", "conga"}) {
    const auto& alg = algorithms::algorithm(name);
    auto compiled = compile_least(alg.source);
    ASSERT_TRUE(compiled.has_value()) << name;
    const auto trace =
        workload_packets(alg, compiled->machine().fields(), 2000, 29);
    const std::size_t half = trace.size() / 2;

    // Reference: the whole trace on the closure engine.
    Machine ref = engine_clone(compiled->machine(), ExecEngine::kClosure);
    std::vector<Packet> ref_out;
    for (const auto& p : trace) ref_out.push_back(ref.process(p));

    const auto engines = engines_of(compiled->machine());
    for (ExecEngine first : engines) {
      for (ExecEngine second : engines) {
        if (first == second) continue;
        Machine m1 = engine_clone(compiled->machine(), first);
        std::vector<Packet> out;
        for (std::size_t i = 0; i < half; ++i)
          out.push_back(m1.process(trace[i]));
        Machine m2 = engine_clone(compiled->machine(), second);
        m2.restore_state(m1.snapshot_state());
        for (std::size_t i = half; i < trace.size(); ++i)
          out.push_back(m2.process(trace[i]));
        const std::string what = std::string(name) + " " +
                                 engine_name(first) + "->" +
                                 engine_name(second);
        expect_packets_equal(out, ref_out, what);
        EXPECT_TRUE(m2.state() == ref.state()) << what;
      }
    }
  }
}

TEST(KernelDifferentialTest, EngineFlipMidStreamIsSeamless) {
  // All paths read and write the same FieldTable ids and StateStore, so
  // rotating the engine between packets must be invisible.
  const auto& alg = algorithms::algorithm("flowlets");
  auto compiled = compile_least(alg.source);
  ASSERT_TRUE(compiled.has_value());
  const auto trace =
      workload_packets(alg, compiled->machine().fields(), 3000, 31);

  const auto engines = engines_of(compiled->machine());
  Machine ref = engine_clone(compiled->machine(), ExecEngine::kClosure);
  Machine flip = engine_clone(compiled->machine(), engines.back());
  std::mt19937 rng(5);
  std::size_t which = engines.size() - 1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (rng() % 64 == 0) {
      which = (which + 1 + rng() % (engines.size() - 1)) % engines.size();
      flip.set_engine(engines[which]);
    }
    ASSERT_EQ(ref.process(trace[i]), flip.process(trace[i])) << "packet " << i;
  }
  EXPECT_TRUE(ref.state() == flip.state());
}

TEST(EngineContractTest, ActiveEngineReportsTheResolvedLadderRung) {
  // active_engine() replaces the old run_compiled_batch bool protocol: the
  // requested engine is a wish, active_engine() is the rung the dispatch
  // will actually execute on, observable before any packet moves.
  const auto& alg = algorithms::algorithm("flowlets");
  auto compiled = compile_least(alg.source);
  ASSERT_TRUE(compiled.has_value());

  Machine m = compiled->machine().clone();
  ASSERT_NE(m.kernel(), nullptr);
  m.set_engine(ExecEngine::kClosure);
  EXPECT_EQ(m.active_engine(), ExecEngine::kClosure);
  m.set_engine(ExecEngine::kKernel);
  EXPECT_EQ(m.active_engine(), ExecEngine::kKernel);
  // A kNative request resolves to the native rung only when the loader
  // attached a pipeline; otherwise it degrades to the kernel VM, and the
  // machine says so instead of failing at run time.
  m.set_engine(ExecEngine::kNative);
  if (m.native() != nullptr) {
    EXPECT_EQ(m.active_engine(), ExecEngine::kNative);
  } else {
    EXPECT_EQ(m.active_engine(), ExecEngine::kKernel);
    EXPECT_FALSE(m.native_fallback_reason().empty());
  }

  // A machine with no lowered kernel executes on closures whatever the
  // toggle says.
  Machine bare;
  bare.set_engine(ExecEngine::kNative);
  EXPECT_EQ(bare.active_engine(), ExecEngine::kClosure);
}

TEST(KernelDifferentialTest, RestoreMidStreamRebindsStateCleanly) {
  // The binding-cache variant of a reshard cycle: process on cached
  // bindings, snapshot, keep processing, restore the snapshot (replacing
  // the StateStore's map wholesale), keep processing.  Every compiled
  // engine must match a closure machine driven through the same sequence.
  const auto& alg = algorithms::algorithm("heavy_hitters");
  auto compiled = compile_least(alg.source);
  ASSERT_TRUE(compiled.has_value());
  const auto trace =
      workload_packets(alg, compiled->machine().fields(), 3000, 37);
  const std::size_t a = trace.size() / 3, b = 2 * trace.size() / 3;

  for (ExecEngine engine : engines_of(compiled->machine())) {
    Machine ref = engine_clone(compiled->machine(), ExecEngine::kClosure);
    Machine under = engine_clone(compiled->machine(), engine);
    std::vector<Packet> ref_out, out;
    banzai::StateStore ref_snap, snap;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (i == a) {
        ref_snap = ref.snapshot_state();
        snap = under.snapshot_state();
      }
      if (i == b) {
        ref.restore_state(ref_snap);
        under.restore_state(snap);
      }
      ref_out.push_back(ref.process(trace[i]));
      out.push_back(under.process(trace[i]));
    }
    expect_packets_equal(ref_out, out,
                         std::string("restore mid-stream [") +
                             engine_name(engine) + "]");
    EXPECT_TRUE(ref.state() == under.state()) << engine_name(engine);
  }
}

TEST(KernelGuardTest, RunBeforeSealAndNarrowPacketsAreRejected) {
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
  banzai::StateStore store;
  Packet p(1);
  EXPECT_THROW(pipe.run(p, store), std::logic_error);
  pipe.seal(4);
  Packet narrow(2);  // program addresses 4 fields
  EXPECT_THROW(pipe.run(narrow, store), std::invalid_argument);
}

TEST(KernelGuardTest, AddingAnOpBeforeTheFirstStageThrows) {
  banzai::CompiledPipeline pipe;
  EXPECT_THROW(pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1)),
               std::logic_error);
}

TEST(KernelGuardTest, SealRejectsFieldIdsBeyondTheProgramWidth) {
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  pipe.add_alu(banzai::KOp::kMov, 3, banzai::KSrc::field_ref(1));
  EXPECT_THROW(pipe.seal(2), std::logic_error) << "dst 3 >= 2 fields";
}

TEST(KernelGuardTest, SealRejectsSharedStateOwnership) {
  // §2.3 state locality: a state variable owned by two ops would have its
  // update sequence reordered by op-major batching — seal must refuse.
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  banzai::StatefulOp a;
  a.num_states = 1;
  a.slots[0].var = pipe.intern_state("x");
  pipe.add_stateful(a, {{0, 0, true}});
  pipe.begin_stage();
  banzai::StatefulOp b = a;
  pipe.add_stateful(b, {{1, 0, true}});
  EXPECT_THROW(pipe.seal(2), std::logic_error);
}

TEST(KernelGuardTest, SealRejectsIntraStageHazards) {
  // Two ops of one stage writing the same field…
  {
    banzai::CompiledPipeline pipe;
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(2));
    EXPECT_THROW(pipe.seal(1), std::logic_error);
  }
  // …and a later op reading an earlier op's output within one stage are both
  // violations of the stage-parallel contract the lowering depends on.
  {
    banzai::CompiledPipeline pipe;
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
    pipe.add_alu(banzai::KOp::kMov, 1, banzai::KSrc::field_ref(0));
    EXPECT_THROW(pipe.seal(2), std::logic_error);
  }
  // The same two ops in different stages are plain dataflow.
  {
    banzai::CompiledPipeline pipe;
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
    pipe.begin_stage();
    pipe.add_alu(banzai::KOp::kMov, 1, banzai::KSrc::field_ref(0));
    pipe.seal(2);
    banzai::StateStore store;
    Packet p(2);
    pipe.run(p, store);
    EXPECT_EQ(p.get(0), 1);
    EXPECT_EQ(p.get(1), 1);
  }
}

TEST(StateGenerationTest, MutationsAndCopiesRetireTheGeneration) {
  banzai::StateStore s;
  const auto g0 = s.generation();
  s.declare("x", 4, /*scalar=*/false);
  const auto g1 = s.generation();
  EXPECT_NE(g0, g1) << "declare must retire cached bindings";

  banzai::StateStore copy = s;  // fresh map nodes -> fresh generation
  EXPECT_NE(copy.generation(), g1);
  EXPECT_TRUE(copy == s) << "generation is identity, not content";

  const banzai::StateStore snap = s.snapshot();
  s.var("x").store(0, 42);
  EXPECT_EQ(s.generation(), g1)
      << "cell writes keep pointers valid and must not rebind";
  s.restore(snap);
  EXPECT_NE(s.generation(), g1) << "restore replaces the map wholesale";
  EXPECT_EQ(s.var("x").load(0), 0);
}

}  // namespace
