// Seeded fault injection against the distributed fleet (src/dist/): a worker
// killed mid-burst with organic failure detection (no harness hints), a
// stalling worker driving the timeout -> retry -> duplicate-ack path, a
// reconnect storm with kill/restart/readmit cycles, duplicated batches —
// every schedule seeded and count-driven so a failure replays exactly.  The
// acceptance bar throughout: cluster egress bit-exact against ONE sequential
// per-slot reference, with exact delivered + dropped + retried accounting,
// and the fault counters visible on a live /metrics endpoint.
//
// The file matches the CMake `chaos` -> stress label regex: it runs in the
// stress lane and under TSan in CI, not in the default quick pass.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "banzai/metrics.h"
#include "core/compiler.h"
#include "dist/front.h"
#include "dist/health.h"
#include "dist/metrics.h"
#include "dist/worker.h"
#include "sim/partition.h"
#include "test_util.h"
#include "wire/codec.h"

namespace {

using banzai::Packet;
using dist::FrontConfig;
using dist::FrontTier;
using dist::HealthState;
using dist::WorkerConfig;
using dist::WorkerServer;
using wire::WireCodec;
using wire::WireSpec;

constexpr std::size_t kSlots = 8;

struct ChaosKnobs {
  std::size_t n_workers = 4;
  std::uint64_t seed = 7;
  std::uint32_t dup_every = 0;
  std::uint32_t stall_every = 0;
  dist::Millis stall_for{0};
  dist::Millis rpc_timeout{2000};
  std::uint32_t dead_after = 2;
};

struct ChaosCluster {
  domino::CompileResult compiled;
  std::shared_ptr<const WireCodec> rx, tx;
  std::vector<std::unique_ptr<WorkerServer>> workers;
  std::unique_ptr<FrontTier> front;
  std::vector<banzai::FieldId> flow_key;

  explicit ChaosCluster(const ChaosKnobs& k)
      : compiled(domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"))) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    rx = std::make_shared<const WireCodec>(spec, ft);
    tx = std::make_shared<const WireCodec>(spec, ft, compiled.output_map());
    flow_key = {ft.id_of("sport"), ft.id_of("dport")};

    for (std::size_t w = 0; w < k.n_workers; ++w) {
      WorkerConfig wc;
      wc.algorithm = "flowlets";
      wc.num_slots = kSlots;
      wc.num_shards = 2;
      wc.batch_size = 32;
      wc.ring_capacity = 256;
      wc.flow_key = {"sport", "dport"};
      wc.stall_every = k.stall_every;
      wc.stall_for = k.stall_for;
      workers.push_back(std::make_unique<WorkerServer>(compiled.machine(), rx,
                                                       tx, wc));
      workers.back()->start();
    }

    FrontConfig fc;
    fc.algorithm = "flowlets";
    fc.num_slots = kSlots;
    fc.flow_key = flow_key;
    fc.seed = k.seed;
    fc.dup_every = k.dup_every;
    fc.rpc_timeout = k.rpc_timeout;
    fc.backoff_base = dist::Millis(2);
    fc.backoff_max = dist::Millis(50);
    fc.max_batch = 16;
    fc.dead_after = k.dead_after;
    front = std::make_unique<FrontTier>(rx, fc);
    for (auto& w : workers) front->add_worker(w->port());
    front->connect();
  }

  ~ChaosCluster() {
    for (auto& w : workers) w->stop();
  }

  std::vector<std::vector<std::uint8_t>> sequential_reference(
      const std::vector<std::vector<std::uint8_t>>& frames) {
    std::vector<banzai::Machine> slots;
    for (std::size_t v = 0; v < kSlots; ++v)
      slots.push_back(compiled.machine().clone());
    Packet scratch(compiled.machine().fields().size());
    std::vector<std::vector<std::uint8_t>> out;
    for (const auto& f : frames) {
      if (!rx->parse_exact(f.data(), f.size(), scratch).ok()) continue;
      std::uint64_t h = 0;
      for (banzai::FieldId fk : flow_key)
        h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(
                                      scratch.get(fk))));
      out.push_back(tx->deparse(slots[h % kSlots].process(scratch)));
    }
    return out;
  }

  std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n,
                                                     unsigned rng_seed) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& ft = compiled.machine().fields();
    std::mt19937 rng(rng_seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t i = 0; i < n; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, static_cast<int>(i), f);
      Packet p(ft.size());
      for (const auto& [k, v] : f)
        if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
      frames.push_back(rx->deparse(p));
    }
    return frames;
  }
};

void expect_bit_exact(const std::vector<std::vector<std::uint8_t>>& got,
                      const std::vector<std::vector<std::uint8_t>>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "frame " << i;
}

// The acceptance pin: kill 1 of 4 workers mid-burst with duplicated batches
// in the mix, let the failure detector find the corpse on its own, and
// require byte-identical egress plus exact accounting.
TEST(DistChaosTest, SeededKillOneOfFourMidBurstStaysBitExact) {
  ChaosKnobs k;
  k.n_workers = 4;
  k.seed = 7;
  k.dup_every = 5;
  k.rpc_timeout = dist::Millis(200);
  k.dead_after = 2;
  ChaosCluster c(k);

  auto frames = c.make_frames(1600, 97);
  // Dropped lane: malformed runts interleaved at a fixed cadence.
  const std::vector<std::uint8_t> runt = {0xD0};
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < frames.size(); i += 200) {
    frames.insert(frames.begin() + static_cast<std::ptrdiff_t>(i), runt);
    ++dropped;
  }
  const auto expected = c.sequential_reference(frames);

  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 400) c.front->checkpoint();
    // SIGKILL stand-in at a seeded instant: no evict() hint — the front must
    // discover the death through failed RPCs and migrate on its own.
    if (i == 800) c.workers[2]->kill();
    c.front->offer(frames[i]);
  }
  c.front->flush();
  const auto got = c.front->drain_egress();
  expect_bit_exact(got, expected);

  const auto st = c.front->stats();
  // Exact accounting: every offered frame is either delivered or dropped.
  EXPECT_EQ(st.frames_offered, frames.size());
  EXPECT_EQ(st.egress_frames, expected.size());
  EXPECT_EQ(st.rejects, dropped);
  EXPECT_EQ(st.egress_frames + st.rejects, st.frames_offered);
  // frames_acked legitimately over-counts across a migration (the survivor
  // re-acks replayed frames as fresh applies); the exactly-once guarantee is
  // the egress identity above, enforced by the sequence window.
  EXPECT_GE(st.frames_acked + st.rejects, st.frames_offered);
  // Retried lane: the kill forced timeouts/errors, retries, and a migration.
  EXPECT_GT(st.retries, 0u);
  EXPECT_GE(st.migrations, 1u);
  EXPECT_GT(st.replays, 0u);
  EXPECT_GT(st.dup_acks, 0u) << "dup_every never fired";
  EXPECT_EQ(c.front->worker_view(2).health, HealthState::kDead);
  EXPECT_GE(c.front->worker_view(2).deaths, 1u);
  EXPECT_TRUE(c.front->settled());
}

// A worker that stalls past the RPC deadline without dying: the front must
// time out, reconnect, re-send, and absorb the duplicate acks — and the
// egress of the stalled (but applied) batch must survive the dropped reply.
TEST(DistChaosTest, StallingWorkerDrivesTimeoutRetryDedup) {
  ChaosKnobs k;
  k.n_workers = 2;
  k.seed = 11;
  k.stall_every = 7;
  k.stall_for = dist::Millis(400);
  k.rpc_timeout = dist::Millis(120);
  k.dead_after = 1000;  // stalls must never escalate to migration here
  ChaosCluster c(k);

  const auto frames = c.make_frames(400, 101);
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  expect_bit_exact(c.front->drain_egress(), expected);

  const auto st = c.front->stats();
  EXPECT_GT(st.retries, 0u) << "the stall schedule never blew a deadline";
  EXPECT_GT(st.dup_acks, 0u)
      << "re-sent batches must hit the worker-side seq dedup";
  EXPECT_GT(st.reconnects, c.front->num_workers())
      << "timeouts must tear down and re-establish connections";
  std::uint64_t timeouts = 0;
  for (std::size_t w = 0; w < c.front->num_workers(); ++w)
    timeouts += c.front->worker_view(w).timeouts;
  EXPECT_GT(timeouts, 0u);
  EXPECT_EQ(st.migrations, 0u);
  EXPECT_EQ(st.frames_acked + st.dup_acks, st.frames_sent);
}

// A dropped ack for a batch CONTAINING REJECTS, re-sent after the timeout:
// the worker must re-answer the original reject verdicts even when later
// frames in the same slot already advanced its dedup watermark.  A blanket
// kDuplicate answer would never tombstone the rejected seqs, the egress
// window would never settle, and flush() would throw.
TEST(DistChaosTest, StalledBatchWithRejectsStillSettles) {
  ChaosKnobs k;
  k.n_workers = 1;
  k.seed = 19;
  k.stall_every = 3;
  k.stall_for = dist::Millis(400);
  k.rpc_timeout = dist::Millis(120);
  k.dead_after = 1000;  // stay on the timeout-retry path, never migrate
  ChaosCluster c(k);

  auto frames = c.make_frames(400, 109);
  // A runt every 5th frame: with max_batch = 16 nearly every batch carries a
  // reject, so the stall schedule is guaranteed to drop acks that contain
  // reject verdicts alongside accepted frames.
  const std::vector<std::uint8_t> runt = {0xD0};
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < frames.size(); i += 5) {
    frames.insert(frames.begin() + static_cast<std::ptrdiff_t>(i), runt);
    ++dropped;
  }
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  expect_bit_exact(c.front->drain_egress(), expected);

  const auto st = c.front->stats();
  EXPECT_GT(st.retries, 0u) << "the stall schedule never blew a deadline";
  EXPECT_GT(st.dup_acks, 0u)
      << "re-sent batches must hit the worker-side seq dedup";
  EXPECT_EQ(st.rejects, dropped);
  EXPECT_EQ(st.egress_frames + st.rejects, st.frames_offered);
  EXPECT_EQ(st.migrations, 0u);
  EXPECT_TRUE(c.front->settled());
}

// Kill/restart/readmit cycles: a worker dies, its slots migrate, the process
// comes back empty on the same port, rejoins through the recovering state,
// and is handed a slot back — repeatedly, without losing a byte.
TEST(DistChaosTest, ReconnectStormWithRestartsRecovers) {
  ChaosKnobs k;
  k.n_workers = 2;
  k.seed = 13;
  k.rpc_timeout = dist::Millis(200);
  k.dead_after = 2;
  ChaosCluster c(k);

  const auto frames = c.make_frames(900, 103);
  const auto expected = c.sequential_reference(frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i % 300 == 100) {
      c.front->checkpoint();
      c.workers[1]->kill();
    }
    if (i % 300 == 200) {
      c.workers[1]->restart();
      ASSERT_TRUE(c.front->readmit(1));
      // Hand a slot back so the readmitted worker carries load again; the
      // snapshot-restore-replay arc runs against its pristine state.
      c.front->move_slot(1, 1);
    }
    c.front->offer(frames[i]);
  }
  c.front->flush();
  expect_bit_exact(c.front->drain_egress(), expected);

  const auto st = c.front->stats();
  EXPECT_GE(st.migrations, 3u);
  EXPECT_GE(st.slot_moves, 3u);
  const auto view = c.front->worker_view(1);
  EXPECT_GE(view.deaths, 3u);
  EXPECT_GE(view.recoveries, 1u) << "readmit never completed a recovery arc";
  EXPECT_NE(view.health, HealthState::kDead);
  EXPECT_TRUE(c.front->settled());
}

// ---- /metrics exposure of the fault counters -------------------------------

std::string http_get(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)::send(fd, req, sizeof(req) - 1, 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

// Extracts the value of an unlabelled sample line ("name 42").
std::uint64_t sample_value(const std::string& page, const std::string& name) {
  std::istringstream is(page);
  std::string line;
  while (std::getline(is, line))
    if (line.rfind(name + " ", 0) == 0)
      return std::stoull(line.substr(name.size() + 1));
  ADD_FAILURE() << "metric " << name << " not found";
  return 0;
}

TEST(DistChaosTest, FaultCountersReachTheMetricsPage) {
  ChaosKnobs k;
  k.n_workers = 2;
  k.seed = 17;
  k.stall_every = 5;
  k.stall_for = dist::Millis(400);
  k.rpc_timeout = dist::Millis(120);
  k.dead_after = 1000;
  ChaosCluster c(k);

  banzai::MetricsEndpoint endpoint;
  endpoint.add_source([&](std::ostream& os) {
    dist::render_dist_metrics(os, *c.front);
  });
  endpoint.start();

  const auto frames = c.make_frames(300, 107);
  const auto expected = c.sequential_reference(frames);
  for (const auto& f : frames) c.front->offer(f);
  c.front->flush();
  expect_bit_exact(c.front->drain_egress(), expected);

  const std::string page = http_get(endpoint.port());
  endpoint.stop();
  ASSERT_NE(page.find("200 OK"), std::string::npos);
  EXPECT_GT(sample_value(page, "domino_dist_retries_total"), 0u);
  EXPECT_GT(sample_value(page, "domino_dist_frames_offered_total"), 0u);
  EXPECT_GT(sample_value(page, "domino_dist_dup_acks_total"), 0u);
  // Per-worker families: the health gauge for every worker, and at least one
  // worker with a nonzero timeout counter.
  EXPECT_NE(page.find("domino_dist_worker_health{worker=\"0\"}"),
            std::string::npos);
  EXPECT_NE(page.find("domino_dist_worker_health{worker=\"1\"}"),
            std::string::npos);
  std::uint64_t timeouts = 0;
  for (const char* name : {"domino_dist_worker_timeouts_total{worker=\"0\"}",
                           "domino_dist_worker_timeouts_total{worker=\"1\"}"}) {
    const auto pos = page.find(name);
    ASSERT_NE(pos, std::string::npos) << name;
    timeouts += std::stoull(page.substr(pos + std::string(name).size() + 1));
  }
  EXPECT_GT(timeouts, 0u);
}

}  // namespace
