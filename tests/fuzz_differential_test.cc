// Fuzzed end-to-end property test: generate random (but sema-valid) Domino
// programs, compile each onto the least expressive paper target that accepts
// it, and check the central serializability property — the pipelined machine
// with packets in flight is observationally identical to the sequential
// interpreter — on seeded random workloads.
//
// Programs that no target accepts are skipped (all-or-nothing rejection is
// itself exercised); the suite asserts that a healthy fraction compiles so
// the generator cannot silently rot.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "banzai/sim.h"
#include "core/compiler.h"
#include "core/interp.h"

namespace {

using banzai::Value;

class ProgramGen {
 public:
  explicit ProgramGen(unsigned seed) : rng_(seed) {}

  std::string generate() {
    num_fields_ = pick(2, 4);
    num_states_ = pick(1, 3);
    std::ostringstream os;
    os << "struct Packet {";
    for (int i = 0; i < num_fields_; ++i) os << " int f" << i << ";";
    os << " int out0; int out1; int idx; };\n";
    for (int i = 0; i < num_states_; ++i) {
      if (i == 0 && chance(40)) {
        os << "int s0[16] = {" << pick(-2, 2) << "};\n";
        state_is_array_ = true;
      } else {
        os << "int s" << i << " = " << pick(-3, 3) << ";\n";
      }
    }
    os << "void fuzz(struct Packet pkt) {\n";
    if (state_is_array_)
      os << "  pkt.idx = hash2(pkt.f0, pkt.f1) % 16;\n";
    const int num_stmts = pick(2, 5);
    for (int i = 0; i < num_stmts; ++i) os << "  " << statement() << "\n";
    os << "  pkt.out0 = " << pure_expr(2) << ";\n";
    os << "  pkt.out1 = " << state_ref(0) << " + " << pure_expr(1) << ";\n";
    os << "}\n";
    return os.str();
  }

 private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }
  bool chance(int percent) { return pick(1, 100) <= percent; }

  std::string field() { return "pkt.f" + std::to_string(pick(0, num_fields_ - 1)); }

  std::string state_ref(int i) {
    if (i == 0 && state_is_array_) return "s0[pkt.idx]";
    return "s" + std::to_string(i);
  }

  std::string rand_state() { return state_ref(pick(0, num_states_ - 1)); }

  // Expression over fields and constants only (always mappable statelessly).
  std::string pure_expr(int depth) {
    if (depth == 0 || chance(35))
      return chance(50) ? field() : std::to_string(pick(-8, 8));
    static const char* ops[] = {"+", "-", "&", "|", "^", "<", ">", "==",
                                "!=", "&&", "||"};
    const std::string op = ops[pick(0, 10)];
    return "(" + pure_expr(depth - 1) + " " + op + " " + pure_expr(depth - 1) +
           ")";
  }

  std::string condition() {
    switch (pick(0, 3)) {
      case 0: return field() + " > " + std::to_string(pick(-4, 4));
      case 1: return rand_state() + " < " + field();
      case 2: return rand_state() + " == " + std::to_string(pick(0, 4));
      default: return "(" + field() + " != 0)";
    }
  }

  // One update of a single state variable, in shapes the atom grammar spans
  // (plus occasional deliberately-unmappable shapes to exercise rejection).
  std::string update(const std::string& s) {
    switch (pick(0, 5)) {
      case 0: return s + " = " + s + " + " + std::to_string(pick(1, 4)) + ";";
      case 1: return s + " = " + field() + ";";
      case 2: return s + " = " + s + " + " + field() + ";";
      case 3: return s + " = " + s + " - " + field() + ";";
      case 4: return s + " = " + std::to_string(pick(0, 3)) + ";";
      default: return s + " = " + s + " & " + field() + ";";  // unmappable
    }
  }

  std::string statement() {
    const std::string s = rand_state();
    switch (pick(0, 3)) {
      case 0:
        return update(s);
      case 1:
        return "if (" + condition() + ") { " + update(s) + " }";
      case 2:
        return "if (" + condition() + ") { " + update(s) + " } else { " +
               update(s) + " }";
      default:
        return "if (" + condition() + ") { if (" + condition() + ") { " +
               update(s) + " } }";
    }
  }

  std::mt19937 rng_;
  int num_fields_ = 2;
  int num_states_ = 1;
  bool state_is_array_ = false;
};

class FuzzDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzDifferentialTest, PipelineSerializable) {
  ProgramGen gen(GetParam());
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  // Front end must always accept generator output.
  domino::Program prog;
  ASSERT_NO_THROW(prog = domino::parse_and_check(source));

  std::optional<domino::CompileResult> compiled;
  for (const auto& target : atoms::paper_targets()) {
    try {
      compiled = domino::compile(source, target);
      break;
    } catch (const domino::CompileError&) {
    }
  }
  if (!compiled.has_value()) {
    GTEST_SKIP() << "no target accepts this program (all-or-nothing)";
  }

  domino::Interpreter interp(compiled->program);
  auto& machine = compiled->machine();
  banzai::PipelineSim sim(machine);

  std::mt19937 wl(GetParam() ^ 0xabcdefu);
  std::uniform_int_distribution<Value> val(-64, 64);
  const int n = 600;
  std::vector<std::vector<Value>> inputs;
  for (int i = 0; i < n; ++i) {
    std::vector<Value> row;
    for (const auto& f : compiled->program.packet_fields)
      row.push_back(f.name.rfind("f", 0) == 0 ? val(wl) : 0);
    inputs.push_back(row);
  }

  std::vector<std::pair<Value, Value>> expected;
  for (int i = 0; i < n; ++i) {
    auto pkt = interp.make_packet();
    std::size_t j = 0;
    for (const auto& f : compiled->program.packet_fields)
      interp.set(pkt, f.name, inputs[static_cast<std::size_t>(i)][j++]);
    interp.run(pkt);
    expected.emplace_back(interp.get(pkt, "out0"), interp.get(pkt, "out1"));
  }

  for (int i = 0; i < n; ++i) {
    banzai::Packet pkt(machine.fields().size());
    std::size_t j = 0;
    for (const auto& f : compiled->program.packet_fields)
      pkt.set(machine.fields().id_of(f.name),
              inputs[static_cast<std::size_t>(i)][j++]);
    sim.enqueue(pkt);
  }
  sim.drain();

  const auto out0 = machine.fields().id_of(compiled->output_map().at("out0"));
  const auto out1 = machine.fields().id_of(compiled->output_map().at("out1"));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(sim.egress()[static_cast<std::size_t>(i)].get(out0),
              expected[static_cast<std::size_t>(i)].first)
        << "packet " << i << " out0";
    ASSERT_EQ(sim.egress()[static_cast<std::size_t>(i)].get(out1),
              expected[static_cast<std::size_t>(i)].second)
        << "packet " << i << " out1";
  }
  EXPECT_TRUE(interp.state() == machine.state());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range(0u, 60u));

// The generator must keep producing both outcomes: mappable programs (or
// the differential property above is never exercised) and unmappable ones
// (or all-or-nothing rejection is never exercised).  Runs its own sweep so
// it holds under per-test process isolation.
TEST(FuzzGeneratorHealth, GeneratorExercisesBothOutcomes) {
  int compiled = 0, rejected = 0;
  for (unsigned seed = 0; seed < 60; ++seed) {
    ProgramGen gen(seed);
    const std::string source = gen.generate();
    bool ok = false;
    for (const auto& target : atoms::paper_targets()) {
      try {
        domino::compile(source, target);
        ok = true;
        break;
      } catch (const domino::CompileError&) {
      }
    }
    (ok ? compiled : rejected)++;
  }
  EXPECT_GT(compiled, 20);
  EXPECT_GT(rejected, 0);
}

}  // namespace
