// NetFabric: the discrete-event leaf-spine simulator that runs compiled
// Banzai machines inside a network (sim/netfabric.h).
//
// The anchor is a differential: a one-leaf fabric is just "a switch program
// plus an output queue", so its behaviour must be packet-field- and
// state-identical to running Machine::process over the trace and
// simulate_queue over the same arrivals.  On top of that: determinism under a
// fixed seed, conservation (delivered + dropped == injected) under overload,
// and the closed-loop payoff — CONGA routing beats random per-flow path
// placement on a Zipf-skewed trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algorithms/corpus.h"
#include "core/compiler.h"
#include "sim/netfabric.h"
#include "sim/queue.h"
#include "sim/tracegen.h"

namespace netsim {
namespace {

std::vector<TracePacket> sorted_flow_trace(std::size_t packets,
                                           std::size_t flows, double skew,
                                           std::uint64_t seed) {
  FlowTraceConfig cfg;
  cfg.num_packets = packets;
  cfg.num_flows = flows;
  cfg.zipf_skew = skew;
  cfg.seed = seed;
  auto trace = generate_flow_trace(cfg);
  sort_by_arrival(trace);
  return trace;
}

// Mirrors NetFabric's ingress binding for leaf-local traffic: what the hosted
// program sees for a packet injected at tick pkt.arrival on a 1-leaf fabric.
banzai::Packet local_ingress_view(const FieldBinding& b, std::size_t fields,
                                  const TracePacket& pkt) {
  banzai::Packet p(fields);
  if (b.now) p.set(*b.now, static_cast<banzai::Value>(pkt.arrival));
  if (b.arrival) p.set(*b.arrival, static_cast<banzai::Value>(pkt.arrival));
  if (b.size_bytes) p.set(*b.size_bytes, pkt.size_bytes);
  if (b.flow_id) p.set(*b.flow_id, pkt.flow_id);
  if (b.sport) p.set(*b.sport, pkt.sport);
  if (b.dport) p.set(*b.dport, pkt.dport);
  if (b.src) p.set(*b.src, 0);
  if (b.dst) p.set(*b.dst, 0);
  return p;
}

TEST(FabricDifferentialTest, SingleNodeMatchesMachinePlusQueue) {
  const auto trace = sorted_flow_trace(4000, 50, 1.1, 17);

  auto compiled = domino::compile(algorithms::algorithm("flowlets").source,
                                  *atoms::find_target("banzai-praw"));
  const auto binding = FieldBinding::resolve(compiled.machine().fields(),
                                             compiled.output_map());

  // Reference: the machine alone, packet by packet, plus the queue alone.
  banzai::Machine ref = compiled.machine().clone();
  std::vector<banzai::Packet> ref_views;
  ref_views.reserve(trace.size());
  for (const auto& tp : trace)
    ref_views.push_back(
        ref.process(local_ingress_view(binding, ref.fields().size(), tp)));
  QueueConfig qc;
  qc.bytes_per_tick = 700;
  const auto ref_samples = simulate_queue(trace, qc);

  // The fabric: one leaf, no spines, same program, same port.
  NetFabricConfig fc;
  fc.num_leaves = 1;
  fc.num_spines = 0;
  fc.port = qc;
  NetFabric fabric(fc);
  fabric.host_ingress(0, compiled.machine().clone(), binding);
  for (const auto& tp : trace) fabric.inject(tp, 0, 0);
  fabric.run();

  ASSERT_EQ(fabric.delivered().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const DeliveredPacket& d = fabric.delivered()[i];
    ASSERT_EQ(d.ingress_view, ref_views[i]) << "packet " << i;
    ASSERT_EQ(d.last_hop.arrival, ref_samples[i].arrival) << "packet " << i;
    ASSERT_EQ(d.last_hop.departure, ref_samples[i].departure) << "packet " << i;
    ASSERT_EQ(d.last_hop.sojourn, ref_samples[i].sojourn) << "packet " << i;
    ASSERT_EQ(d.last_hop.qlen_bytes, ref_samples[i].qlen_bytes)
        << "packet " << i;
    ASSERT_EQ(d.last_hop.qlen_pkts, ref_samples[i].qlen_pkts) << "packet " << i;
    ASSERT_EQ(d.delivered_tick, ref_samples[i].departure) << "packet " << i;
  }
  ASSERT_NE(fabric.ingress_machine(0), nullptr);
  EXPECT_TRUE(fabric.ingress_machine(0)->state() == ref.state());
}

TEST(FabricDifferentialTest, ShardedSingleSlotEngineMatchesMachine) {
  const auto trace = sorted_flow_trace(1500, 30, 1.1, 23);
  auto compiled = domino::compile(algorithms::algorithm("flowlets").source,
                                  *atoms::find_target("banzai-praw"));
  const auto binding = FieldBinding::resolve(compiled.machine().fields(),
                                             compiled.output_map());

  NetFabricConfig fc;
  fc.num_leaves = 1;
  fc.num_spines = 0;
  NetFabric plain(fc), sharded(fc);
  plain.host_ingress(0, compiled.machine().clone(), binding);
  // One slot == one replica == bit-identical to the plain machine.
  sharded.host_ingress_sharded(0, compiled.machine(), /*num_slots=*/1,
                               /*num_shards=*/1, {}, binding);
  for (const auto& tp : trace) {
    plain.inject(tp, 0, 0);
    sharded.inject(tp, 0, 0);
  }
  plain.run();
  sharded.run();
  ASSERT_EQ(plain.delivered().size(), sharded.delivered().size());
  for (std::size_t i = 0; i < plain.delivered().size(); ++i) {
    EXPECT_EQ(plain.delivered()[i].ingress_view,
              sharded.delivered()[i].ingress_view)
        << "packet " << i;
    EXPECT_EQ(plain.delivered()[i].delivered_tick,
              sharded.delivered()[i].delivered_tick)
        << "packet " << i;
  }
}

struct CongaRun {
  std::int64_t max_path_bytes = 0;
  std::int64_t total_path_bytes = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  std::int64_t feedback = 0;
  std::vector<DeliveredPacket> packets;
};

CongaRun run_leaf_spine(bool with_conga, const std::vector<TracePacket>& trace,
                        int leaves, int spines, std::uint64_t seed) {
  NetFabricConfig fc;
  fc.num_leaves = leaves;
  fc.num_spines = spines;
  fc.seed = seed;
  fc.port.bytes_per_tick = 400;
  fc.port.capacity_bytes = 40000;
  fc.port.ecn_threshold_bytes = 30000;
  fc.link_latency = 2;
  fc.feedback_latency = 2;
  NetFabric fabric(fc);
  if (with_conga) {
    auto compiled = domino::compile(algorithms::algorithm("conga").source,
                                    *atoms::find_target("banzai-pairs"));
    const auto binding = FieldBinding::resolve(compiled.machine().fields(),
                                               compiled.output_map());
    for (int l = 0; l < leaves; ++l)
      fabric.host_ingress(l, compiled.machine().clone(), binding);
  }
  for (const auto& tp : trace) {
    const auto [src, dst] = flow_endpoints(tp.flow_id, leaves, 0x5eaf);
    fabric.inject(tp, src, dst);
  }
  fabric.run();

  CongaRun r;
  r.max_path_bytes = fabric.max_uplink_accepted_bytes();
  r.total_path_bytes = fabric.total_uplink_accepted_bytes();
  r.delivered = fabric.stats().delivered;
  r.dropped = fabric.stats().dropped;
  r.feedback = fabric.stats().feedback_packets;
  r.packets = fabric.delivered();
  return r;
}

TEST(FabricTest, DeterministicUnderSeed) {
  const auto trace = sorted_flow_trace(3000, 60, 1.2, 5);
  const CongaRun a = run_leaf_spine(true, trace, 4, 4, 11);
  const CongaRun b = run_leaf_spine(true, trace, 4, 4, 11);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].delivered_tick, b.packets[i].delivered_tick);
    EXPECT_EQ(a.packets[i].path, b.packets[i].path);
    EXPECT_EQ(a.packets[i].queue_delay, b.packets[i].queue_delay);
    EXPECT_EQ(a.packets[i].ecn_marked, b.packets[i].ecn_marked);
    EXPECT_EQ(a.packets[i].ingress_view, b.packets[i].ingress_view);
  }
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.feedback, b.feedback);

  // A different ECMP salt must move flows (no machines -> placement is the
  // only degree of freedom).
  const CongaRun e1 = run_leaf_spine(false, trace, 4, 4, 1);
  const CongaRun e2 = run_leaf_spine(false, trace, 4, 4, 2);
  bool any_path_differs = false;
  for (std::size_t i = 0; i < e1.packets.size() && i < e2.packets.size(); ++i)
    any_path_differs |= e1.packets[i].path != e2.packets[i].path;
  EXPECT_TRUE(any_path_differs);
}

TEST(FabricTest, ConservationDeliveredPlusDroppedEqualsInjected) {
  // Overload a small fabric hard enough to tail-drop.
  FlowTraceConfig cfg;
  cfg.num_packets = 6000;
  cfg.num_flows = 16;
  cfg.seed = 9;
  auto trace = generate_flow_trace(cfg);
  sort_by_arrival(trace);

  NetFabricConfig fc;
  fc.num_leaves = 2;
  fc.num_spines = 2;
  fc.port.bytes_per_tick = 120;  // far below offered load
  fc.port.capacity_bytes = 6000;
  fc.port.ecn_threshold_bytes = 3000;
  NetFabric fabric(fc);
  for (const auto& tp : trace) {
    const auto [src, dst] = flow_endpoints(tp.flow_id, 2, 0x77);
    fabric.inject(tp, src, dst);
  }
  fabric.run();

  const FabricStats& st = fabric.stats();
  EXPECT_EQ(st.injected, static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(st.injected, st.delivered + st.dropped);
  EXPECT_EQ(st.delivered, static_cast<std::int64_t>(fabric.delivered().size()));
  EXPECT_GT(st.dropped, 0);
  EXPECT_GT(st.ecn_marked, 0);

  // Port-level accounting agrees: every offered packet was accepted or
  // dropped, nowhere else to go.
  for (int l = 0; l < 2; ++l)
    for (int s = 0; s < 2; ++s) {
      const ByteQueue& q = fabric.uplink(l, s);
      EXPECT_EQ(q.offered_pkts(), q.accepted_pkts() + q.dropped_pkts());
      EXPECT_EQ(q.offered_bytes(), q.accepted_bytes() + q.dropped_bytes());
    }
}

TEST(FabricTest, CongaBeatsRandomPlacementOnZipfTrace) {
  // Zipf-heavy flows pinned to random paths collide; CONGA's closed loop
  // spreads them.  Compare the hottest path's cumulative bytes.
  int conga_wins = 0;
  const int kTrials = 3;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const auto trace = sorted_flow_trace(8000, 24, 1.3, seed * 101);
    const CongaRun conga = run_leaf_spine(true, trace, 4, 4, seed);
    const CongaRun random = run_leaf_spine(false, trace, 4, 4, seed);
    // Same trace offered in both runs.
    EXPECT_GT(conga.feedback, 0);
    EXPECT_EQ(random.feedback, 0);
    if (conga.max_path_bytes < random.max_path_bytes) ++conga_wins;
  }
  EXPECT_EQ(conga_wins, kTrials)
      << "CONGA should beat random per-flow placement on every seed";
}

TEST(FabricTest, EgressAqmMachineSeesQueueDelay) {
  // CoDel at the egress leaf: quiet on an idle fabric, marking on a congested
  // one.  The `qdelay` its packets carry is the fabric's own queueing delay.
  auto build = [](std::int64_t bytes_per_tick) {
    NetFabricConfig fc;
    fc.num_leaves = 1;
    fc.num_spines = 0;
    fc.port.bytes_per_tick = bytes_per_tick;
    return fc;
  };
  auto run_codel = [&](std::int64_t rate) {
    auto compiled = domino::compile(algorithms::algorithm("codel").source,
                                    atoms::lut_extended_target());
    const auto binding = FieldBinding::resolve(compiled.machine().fields(),
                                               compiled.output_map());
    NetFabric fabric(build(rate));
    fabric.host_egress(0, compiled.machine().clone(), binding);
    ArrivalTraceConfig tc;
    tc.num_packets = 8000;
    tc.load = 1.0;
    tc.seed = 77;
    for (const auto& tp : generate_arrival_trace(tc)) fabric.inject(tp, 0, 0);
    fabric.run();
    std::int64_t marks = 0;
    for (const auto& d : fabric.delivered()) marks += d.egress_mark;
    return std::make_pair(marks,
                          static_cast<std::int64_t>(fabric.delivered().size()));
  };
  const auto [fast_marks, fast_n] = run_codel(4000);  // overprovisioned
  const auto [slow_marks, slow_n] = run_codel(300);   // heavily congested
  ASSERT_GT(fast_n, 0);
  ASSERT_GT(slow_n, 0);
  // CoDel paces marks at INTERVAL/sqrt(count), so even a persistent standing
  // queue marks sparsely — the signal is marks appearing at all under
  // congestion and staying at (or near) zero when the port is fast.
  EXPECT_GT(slow_marks, 5 * std::max<std::int64_t>(fast_marks, 1));
  EXPECT_GT(slow_marks, 0);
}

}  // namespace
}  // namespace netsim
