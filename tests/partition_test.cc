// Golden-value pins for the flow-sharding hash.  Every differential test of
// Fleet and FleetService (and the snapshot → reshard → restore contract)
// depends on shard assignment being identical on every platform and across
// every future refactor; these constants freeze the SplitMix64 finalizer, the
// key → shard mapping, the chained multi-field flow hash, and the
// slot-over-shard routing invariant.  If one of these values ever changes,
// the change is a wire-format break for snapshots, not a refactor.
#include <gtest/gtest.h>

#include <cstdint>

#include "algorithms/corpus.h"
#include "banzai/fleet.h"
#include "core/compiler.h"
#include "sim/partition.h"
#include "test_util.h"

namespace {

TEST(PartitionGoldenTest, Mix64MatchesPinnedValues) {
  struct Golden {
    std::uint64_t key;
    std::uint64_t mixed;
  };
  // Computed once from the SplitMix64 finalizer in sim/partition.h.
  const Golden kGolden[] = {
      {0x0ULL, 0xe220a8397b1dcdafULL},
      {0x1ULL, 0x910a2dec89025cc1ULL},
      {0x2ULL, 0x975835de1c9756ceULL},
      {0x7ULL, 0x63cbe1e459320dd7ULL},
      {0x2aULL, 0xbdd732262feb6e95ULL},
      {0x3e8ULL, 0x3c1eba8b4dccc148ULL},
      {0xdeadbeefULL, 0x4adfb90f68c9eb9bULL},
      {0xffffffffULL, 0x73b13ba2aff181c0ULL},
      {0x123456789abcdef0ULL, 0x161922c645ce50e8ULL},
  };
  for (const Golden& g : kGolden)
    EXPECT_EQ(netsim::mix64(g.key), g.mixed) << "key 0x" << std::hex << g.key;
}

TEST(PartitionGoldenTest, ShardOfKeyMatchesPinnedValues) {
  struct Golden {
    std::uint64_t key;
    std::size_t shard4, shard8;
  };
  const Golden kGolden[] = {
      {0x0ULL, 3, 7},    {0x1ULL, 1, 1},        {0x2ULL, 2, 6},
      {0x7ULL, 3, 7},    {0x2aULL, 1, 5},       {0x3e8ULL, 0, 0},
      {0xdeadbeefULL, 3, 3}, {0xffffffffULL, 0, 0},
      {0x123456789abcdef0ULL, 0, 0},
  };
  for (const Golden& g : kGolden) {
    EXPECT_EQ(netsim::shard_of_key(g.key, 4), g.shard4) << "key " << g.key;
    EXPECT_EQ(netsim::shard_of_key(g.key, 8), g.shard8) << "key " << g.key;
    EXPECT_EQ(netsim::shard_of_key(g.key, 1), 0u) << "key " << g.key;
  }
}

// The chained multi-field hash ShardCore computes (h = 0; for each field:
// h = mix64(h ^ field)) — pinned through a real compiled machine so the whole
// packet-to-slot path is frozen, not just the mixer.
TEST(PartitionGoldenTest, ChainedFlowKeyHashMatchesPinnedValue) {
  const auto& alg = algorithms::algorithm("flowlets");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  const auto& ft = compiled.machine().fields();

  banzai::ShardCore core(compiled.machine(), /*num_slots=*/8,
                         /*num_shards=*/2, /*batch_size=*/64,
                         {ft.id_of("sport"), ft.id_of("dport")});
  banzai::Packet pkt(ft.size());
  pkt.set(ft.id_of("sport"), 1005);
  pkt.set(ft.id_of("dport"), 80);
  EXPECT_EQ(core.flow_hash(pkt), 0x2158446fc823923cULL);
  EXPECT_EQ(core.slot_of(pkt), 0x2158446fc823923cULL % 8);
  EXPECT_EQ(core.slot_of(pkt), 4u);
  EXPECT_EQ(core.shard_of(pkt), 0u);  // slot 4 % 2 shards
}

// Routing invariant behind elastic resharding: a packet's slot never depends
// on the shard count, and its shard is always slot % num_shards.  This is
// what lets whole-slot state migration reproduce a fresh service bit for bit.
TEST(PartitionGoldenTest, SlotAssignmentIsShardCountIndependent) {
  const auto& alg = algorithms::algorithm("flowlets");
  auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  const auto& ft = compiled.machine().fields();
  const std::vector<banzai::FieldId> key = {ft.id_of("sport"),
                                            ft.id_of("dport")};

  banzai::ShardCore one(compiled.machine(), 8, 1, 64, key);
  banzai::ShardCore two(compiled.machine(), 8, 2, 64, key);
  banzai::ShardCore eight(compiled.machine(), 8, 8, 64, key);
  for (int sport = 0; sport < 64; ++sport) {
    banzai::Packet pkt(ft.size());
    pkt.set(ft.id_of("sport"), 1000 + sport);
    pkt.set(ft.id_of("dport"), 80);
    const std::size_t slot = one.slot_of(pkt);
    EXPECT_EQ(two.slot_of(pkt), slot);
    EXPECT_EQ(eight.slot_of(pkt), slot);
    EXPECT_EQ(one.shard_of(pkt), slot % 1);
    EXPECT_EQ(two.shard_of(pkt), slot % 2);
    EXPECT_EQ(eight.shard_of(pkt), slot % 8);
  }
}

}  // namespace
