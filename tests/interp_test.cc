#include "core/interp.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/sema.h"
#include "ir/intrinsics.h"
#include "ir/ops.h"

namespace domino {
namespace {

// Runs `expr` assigned to pkt.out with inputs pkt.x / pkt.y and returns the
// result.
Value eval_expr(const std::string& expr, Value x, Value y) {
  Program p = parse(
      "struct Packet { int x; int y; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = " + expr + "; }\n");
  analyze(p);
  Interpreter interp(p);
  auto pkt = interp.make_packet();
  interp.set(pkt, "x", x);
  interp.set(pkt, "y", y);
  interp.run(pkt);
  return interp.get(pkt, "out");
}

TEST(InterpExprTest, Arithmetic) {
  EXPECT_EQ(eval_expr("pkt.x + pkt.y", 2, 3), 5);
  EXPECT_EQ(eval_expr("pkt.x - pkt.y", 2, 3), -1);
  EXPECT_EQ(eval_expr("pkt.x * pkt.y", -4, 3), -12);
}

TEST(InterpExprTest, AdditionWrapsModulo32Bits) {
  EXPECT_EQ(eval_expr("pkt.x + pkt.y", INT32_MAX, 1), INT32_MIN);
}

TEST(InterpExprTest, SubtractionWraps) {
  EXPECT_EQ(eval_expr("pkt.x - pkt.y", INT32_MIN, 1), INT32_MAX);
}

TEST(InterpExprTest, DivisionByZeroIsZero) {
  EXPECT_EQ(eval_expr("pkt.x / pkt.y", 17, 0), 0);
  EXPECT_EQ(eval_expr("pkt.x % pkt.y", 17, 0), 0);
}

TEST(InterpExprTest, DivisionOverflowCase) {
  EXPECT_EQ(eval_expr("pkt.x / pkt.y", INT32_MIN, -1), INT32_MIN);
  EXPECT_EQ(eval_expr("pkt.x % pkt.y", INT32_MIN, -1), 0);
}

TEST(InterpExprTest, ShiftsMaskAmountTo5Bits) {
  EXPECT_EQ(eval_expr("pkt.x << pkt.y", 1, 33), 2);  // 33 & 31 == 1
  EXPECT_EQ(eval_expr("pkt.x >> pkt.y", 16, 36), 1); // 36 & 31 == 4
}

TEST(InterpExprTest, ArithmeticRightShiftOfNegative) {
  EXPECT_EQ(eval_expr("pkt.x >> pkt.y", -8, 1), -4);
}

TEST(InterpExprTest, Relational) {
  EXPECT_EQ(eval_expr("pkt.x < pkt.y", 1, 2), 1);
  EXPECT_EQ(eval_expr("pkt.x >= pkt.y", 1, 2), 0);
  EXPECT_EQ(eval_expr("pkt.x == pkt.y", 7, 7), 1);
  EXPECT_EQ(eval_expr("pkt.x != pkt.y", 7, 7), 0);
}

TEST(InterpExprTest, LogicalOperatorsNormalizeToBool) {
  EXPECT_EQ(eval_expr("pkt.x && pkt.y", 5, 9), 1);
  EXPECT_EQ(eval_expr("pkt.x && pkt.y", 5, 0), 0);
  EXPECT_EQ(eval_expr("pkt.x || pkt.y", 0, 0), 0);
  EXPECT_EQ(eval_expr("pkt.x || pkt.y", 0, 2), 1);
}

TEST(InterpExprTest, BitwiseOperators) {
  EXPECT_EQ(eval_expr("pkt.x & pkt.y", 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(eval_expr("pkt.x | pkt.y", 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(eval_expr("pkt.x ^ pkt.y", 0b1100, 0b1010), 0b0110);
}

TEST(InterpExprTest, Unary) {
  EXPECT_EQ(eval_expr("-pkt.x", 3, 0), -3);
  EXPECT_EQ(eval_expr("!pkt.x", 3, 0), 0);
  EXPECT_EQ(eval_expr("!pkt.x", 0, 0), 1);
  EXPECT_EQ(eval_expr("~pkt.x", 0, 0), -1);
}

TEST(InterpExprTest, TernarySelectsBranch) {
  EXPECT_EQ(eval_expr("pkt.x ? 10 : 20", 1, 0), 10);
  EXPECT_EQ(eval_expr("pkt.x ? 10 : 20", 0, 0), 20);
}

TEST(InterpStateTest, ScalarStatePersistsAcrossPackets) {
  Program p = parse(
      "struct Packet { int out; };\nint c = 0;\n"
      "void t(struct Packet pkt) { c = c + 1; pkt.out = c; }\n");
  analyze(p);
  Interpreter interp(p);
  for (int i = 1; i <= 5; ++i) {
    auto pkt = interp.make_packet();
    interp.run(pkt);
    EXPECT_EQ(interp.get(pkt, "out"), i);
  }
}

TEST(InterpStateTest, StateInitializerApplied) {
  Program p = parse(
      "struct Packet { int out; };\nint c = 42;\n"
      "void t(struct Packet pkt) { pkt.out = c; }\n");
  analyze(p);
  Interpreter interp(p);
  auto pkt = interp.make_packet();
  interp.run(pkt);
  EXPECT_EQ(interp.get(pkt, "out"), 42);
}

TEST(InterpStateTest, ArrayCellsIndependent) {
  Program p = parse(
      "#define N 4\nstruct Packet { int i; int out; };\nint a[N] = {0};\n"
      "void t(struct Packet pkt) { a[pkt.i] = a[pkt.i] + 1; pkt.out = "
      "a[pkt.i]; }\n");
  analyze(p);
  Interpreter interp(p);
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      auto pkt = interp.make_packet();
      interp.set(pkt, "i", i);
      interp.run(pkt);
      EXPECT_EQ(interp.get(pkt, "out"), round);
    }
  }
}

TEST(InterpStateTest, OutOfRangeIndexWraps) {
  Program p = parse(
      "#define N 4\nstruct Packet { int i; int out; };\nint a[N] = {0};\n"
      "void t(struct Packet pkt) { a[pkt.i] = a[pkt.i] + 1; pkt.out = "
      "a[pkt.i]; }\n");
  analyze(p);
  Interpreter interp(p);
  auto pkt = interp.make_packet();
  interp.set(pkt, "i", 6);  // wraps to 2
  interp.run(pkt);
  EXPECT_EQ(interp.state().var("a").load(2), 1);
}

TEST(InterpStateTest, SequentialSemanticsWithinTransaction) {
  // The second statement must observe the first one's write.
  Program p = parse(
      "struct Packet { int out; };\nint c = 0;\n"
      "void t(struct Packet pkt) { c = c + 1; c = c * 2; pkt.out = c; }\n");
  analyze(p);
  Interpreter interp(p);
  auto pkt = interp.make_packet();
  interp.run(pkt);
  EXPECT_EQ(interp.get(pkt, "out"), 2);
  auto pkt2 = interp.make_packet();
  interp.run(pkt2);
  EXPECT_EQ(interp.get(pkt2, "out"), 6);
}

TEST(IntrinsicsTest, HashIsDeterministic) {
  EXPECT_EQ(eval_intrinsic("hash2", {1, 2}), eval_intrinsic("hash2", {1, 2}));
  EXPECT_EQ(eval_intrinsic("hash3", {1, 2, 3}),
            eval_intrinsic("hash3", {1, 2, 3}));
}

TEST(IntrinsicsTest, HashIsNonNegative) {
  for (Value a : {-1000000, -1, 0, 1, 123456789}) {
    EXPECT_GE(eval_intrinsic("hash2", {a, a}), 0);
    EXPECT_GE(eval_intrinsic("hash3", {a, -a, a}), 0);
    EXPECT_GE(eval_intrinsic("hash4", {a, a, a, a}), 0);
  }
}

TEST(IntrinsicsTest, HashesDifferBySeed) {
  EXPECT_NE(eval_intrinsic("hash2", {1, 2}),
            eval_intrinsic("hash3", {1, 2, 0}));
}

TEST(IntrinsicsTest, IsqrtIsFloorSquareRoot) {
  for (std::int32_t v : {0, 1, 2, 3, 4, 15, 16, 17, 99, 100, 101, 1 << 20,
                          INT32_MAX}) {
    const std::int64_t r = isqrt(v);
    EXPECT_LE(r * r, static_cast<std::int64_t>(v)) << v;
    EXPECT_GT((r + 1) * (r + 1), static_cast<std::int64_t>(v)) << v;
  }
  EXPECT_EQ(isqrt(-5), 0);
}

TEST(IntrinsicsTest, SqrtIntervalMonotoneNonIncreasing) {
  Value prev = eval_intrinsic("sqrt_interval", {0});
  for (Value c = 1; c < 200; ++c) {
    Value cur = eval_intrinsic("sqrt_interval", {c});
    EXPECT_LE(cur, prev) << "at c=" << c;
    prev = cur;
  }
}

TEST(IntrinsicsTest, IntrinsicInfoArity) {
  EXPECT_EQ(intrinsic_info("hash2")->arity, 2);
  EXPECT_EQ(intrinsic_info("hash3")->arity, 3);
  EXPECT_EQ(intrinsic_info("hash4")->arity, 4);
  EXPECT_EQ(intrinsic_info("isqrt")->arity, 1);
  EXPECT_EQ(intrinsic_info("sqrt_interval")->arity, 1);
  EXPECT_FALSE(intrinsic_info("nope").has_value());
}

TEST(IntrinsicsTest, UnitClasses) {
  EXPECT_EQ(intrinsic_info("hash2")->unit, IntrinsicUnit::kHash);
  EXPECT_EQ(intrinsic_info("isqrt")->unit, IntrinsicUnit::kMath);
  EXPECT_EQ(intrinsic_info("sqrt_interval")->unit, IntrinsicUnit::kMath);
}

}  // namespace
}  // namespace domino
