// Golden tests reproducing the paper's worked example: flowlet switching
// through every compiler stage (Figures 5, 6, 7, 8, 9 and 3b).
#include <gtest/gtest.h>

#include "algorithms/corpus.h"
#include "core/compiler.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/pipeline.h"
#include "core/sema.h"

namespace domino {
namespace {

class FlowletGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prog_ = parse(algorithms::algorithm("flowlets").source);
    analyze(prog_);
    norm_ = normalize(prog_);
  }
  Program prog_;
  Normalized norm_;
};

TEST_F(FlowletGoldenTest, Figure5BranchRemoval) {
  // After branch removal the saved_hop update is the self-conditional write
  // of Figure 5: saved_hop[pkt.id] = tmp ? pkt.new_hop : saved_hop[pkt.id].
  bool found = false;
  for (const auto& s : norm_.branch_removed.transaction.body) {
    if (s->target->kind == Expr::Kind::kState &&
        s->target->name == "saved_hop") {
      ASSERT_EQ(s->value->kind, Expr::Kind::kTernary);
      EXPECT_EQ(s->value->a->str(), "pkt.new_hop");
      EXPECT_EQ(s->value->b->str(), "saved_hop[pkt.id]");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FlowletGoldenTest, Figure6StateReadWriteFlanks) {
  // Each state variable gets a read flank before use and a write flank at the
  // end; in between, arithmetic happens only on packet temporaries.
  const auto& body = norm_.flanked.transaction.body;
  int read_flanks = 0, write_flanks = 0;
  for (const auto& s : body) {
    if (s->value->kind == Expr::Kind::kState) ++read_flanks;
    if (s->target->kind == Expr::Kind::kState) ++write_flanks;
  }
  EXPECT_EQ(read_flanks, 2);   // last_time, saved_hop
  EXPECT_EQ(write_flanks, 2);
  // Write flanks are the final statements.
  EXPECT_EQ(body[body.size() - 1]->target->kind, Expr::Kind::kState);
  EXPECT_EQ(body[body.size() - 2]->target->kind, Expr::Kind::kState);
}

TEST_F(FlowletGoldenTest, Figure7SingleStaticAssignment) {
  std::set<std::string> assigned;
  for (const auto& s : norm_.ssa.transaction.body) {
    if (s->target->kind != Expr::Kind::kField) continue;
    EXPECT_TRUE(assigned.insert(s->target->name).second);
  }
}

TEST_F(FlowletGoldenTest, Figure8ThreeAddressCode) {
  // Figure 8 has nine statements.  Our TAC has ten: where the paper's flank
  // rewriting duplicates the conditional (lines 7 and 8 of Figure 8 compute
  // `tmp2 ? new_hop : saved_hop` twice — once for pkt.next_hop, once for the
  // write flank), our SSA chain computes it once and copies the result into
  // pkt.next_hop.  Same atoms per stage, same pipeline (see Figure3b test).
  const TacProgram& tac = norm_.tac;
  ASSERT_EQ(tac.stmts.size(), 10u);

  int intrinsics = 0, reads = 0, writes = 0, binaries = 0, ternaries = 0,
      copies = 0;
  for (const auto& s : tac.stmts) {
    switch (s.kind) {
      case TacStmt::Kind::kIntrinsic: ++intrinsics; break;
      case TacStmt::Kind::kReadState: ++reads; break;
      case TacStmt::Kind::kWriteState: ++writes; break;
      case TacStmt::Kind::kBinary: ++binaries; break;
      case TacStmt::Kind::kTernary: ++ternaries; break;
      case TacStmt::Kind::kCopy: ++copies; break;
      default: break;
    }
  }
  EXPECT_EQ(intrinsics, 2);  // hash2, hash3
  EXPECT_EQ(reads, 2);       // saved_hop, last_time read flanks
  EXPECT_EQ(writes, 2);      // saved_hop, last_time write flanks
  EXPECT_EQ(binaries, 2);    // arrival - last_time; tmp > 5
  EXPECT_EQ(ternaries, 1);   // saved_hop select (paper duplicates it)
  EXPECT_EQ(copies, 1);      // next_hop = selected hop
}

TEST_F(FlowletGoldenTest, Figure9SavedHopCycleCondensed) {
  // The dependency graph has a cycle between the saved_hop read and write
  // (pair edges); after condensation they are one component.
  DepGraph g = build_dep_graph(norm_.tac);
  auto sccs = strongly_connected_components(g);
  bool found_saved_hop_scc = false;
  for (const auto& comp : sccs) {
    std::set<TacStmt::Kind> kinds;
    bool touches_saved_hop = false;
    for (int v : comp) {
      const auto& s = norm_.tac.stmts[static_cast<std::size_t>(v)];
      kinds.insert(s.kind);
      if (s.touches_state() && s.state_var == "saved_hop")
        touches_saved_hop = true;
    }
    if (touches_saved_hop) {
      found_saved_hop_scc = true;
      EXPECT_GE(comp.size(), 3u);  // read flank, ternary, write flank
      EXPECT_TRUE(kinds.count(TacStmt::Kind::kReadState));
      EXPECT_TRUE(kinds.count(TacStmt::Kind::kWriteState));
    }
  }
  EXPECT_TRUE(found_saved_hop_scc);
}

TEST_F(FlowletGoldenTest, Figure3bSixStagePipeline) {
  CodeletPipeline p = pipeline_schedule(norm_.tac);
  ASSERT_EQ(p.num_stages(), 6u);  // Figure 3b: a 6-stage Banzai pipeline
  EXPECT_EQ(p.max_codelets_per_stage(), 2u);  // Table 4: "6, 2"

  // Stage 1 computes the two hashes (stateless).
  EXPECT_EQ(p.stages[0].size(), 2u);
  for (const auto& c : p.stages[0]) {
    EXPECT_FALSE(c.is_stateful());
    EXPECT_TRUE(c.has_intrinsic());
  }
  // Exactly two stateful codelets exist: last_time and saved_hop.
  EXPECT_EQ(p.num_stateful_codelets(), 2u);
  // last_time's read-modify-write precedes the saved_hop update.
  int last_time_stage = -1, saved_hop_stage = -1;
  for (std::size_t si = 0; si < p.stages.size(); ++si)
    for (const auto& c : p.stages[si]) {
      if (c.state_vars().count("last_time"))
        last_time_stage = static_cast<int>(si);
      if (c.state_vars().count("saved_hop"))
        saved_hop_stage = static_cast<int>(si);
    }
  EXPECT_LT(last_time_stage, saved_hop_stage);
  // next_hop is produced by the final stage.
  bool next_hop_last = false;
  for (const auto& c : p.stages.back())
    for (const auto& w : c.fields_written())
      if (w.rfind("next_hop", 0) == 0) next_hop_last = true;
  EXPECT_TRUE(next_hop_last);
}

TEST_F(FlowletGoldenTest, PaperLocMatches) {
  // Figure 3a is 37 lines in the paper (including blanks per their count we
  // match the non-blank count within a small margin).
  const std::size_t loc = count_loc(algorithms::algorithm("flowlets").source);
  EXPECT_GE(loc, 25u);
  EXPECT_LE(loc, 37u);
}

TEST_F(FlowletGoldenTest, CompilesToPrawTargetExactly) {
  auto praw = atoms::find_target("banzai-praw");
  ASSERT_TRUE(praw.has_value());
  CompileResult r = compile(algorithms::algorithm("flowlets").source, *praw);
  EXPECT_EQ(r.num_stages(), 6u);
  EXPECT_EQ(r.max_atoms_per_stage(), 2u);
}

TEST_F(FlowletGoldenTest, RejectedByRawTarget) {
  auto raw = atoms::find_target("banzai-raw");
  ASSERT_TRUE(raw.has_value());
  try {
    compile(algorithms::algorithm("flowlets").source, *raw);
    FAIL() << "flowlets must not map to the RAW atom";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.phase(), CompilePhase::kMapping);
  }
}

}  // namespace
}  // namespace domino
