// Malformed-input hardening sweep for the wire front end: seeded random
// frames (garbage, truncated, oversized, mutated-valid) against the codec's
// contract — every frame is exactly parsed or cleanly rejected, a rejected
// frame never touches the packet, classification matches an independent
// oracle, and the accounting is exact all the way through the FleetService
// byte path.  The pcap reader gets the same treatment on whole-file blobs.
// CI runs this suite under ASan/UBSan, where "never reads past len" is
// enforced by the allocator, not just by assertions.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/service.h"
#include "core/compiler.h"
#include "wire/codec.h"
#include "wire/pcap.h"

namespace {

using banzai::Packet;
using wire::ParseStatus;
using wire::WireCodec;
using wire::WireSpec;

// What a correct parser must say about `frame`, derived independently of the
// codec: length checks first, then every const-checked field, in spec order.
ParseStatus oracle_exact(const WireSpec& spec,
                         const std::vector<std::uint8_t>& frame) {
  if (frame.size() < spec.header_bytes) return ParseStatus::kTruncated;
  if (frame.size() > spec.header_bytes) return ParseStatus::kOversized;
  for (const wire::WireField& f : spec.fields) {
    if (!f.has_expect) continue;
    std::uint32_t raw = 0;
    if (f.endian == wire::Endian::kBig) {
      for (std::size_t i = 0; i < f.width; ++i)
        raw = (raw << 8) | frame[f.offset + i];
    } else {
      for (std::size_t i = f.width; i > 0; --i)
        raw = (raw << 8) | frame[f.offset + i - 1];
    }
    if (raw != f.expect) return ParseStatus::kBadValue;
  }
  return ParseStatus::kOk;
}

// Exercises `codec` with `iterations` random frames sized 0..max_len,
// filling `counts` per status; asserts the contract on every frame (void
// return: gtest fatal assertions only work in void functions).
void sweep(const WireSpec& spec, const WireCodec& codec, std::mt19937& rng,
           int iterations, std::size_t max_len,
           std::map<ParseStatus, std::uint64_t>& counts) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  Packet pristine(codec.num_table_fields());
  for (std::size_t i = 0; i < pristine.num_fields(); ++i)
    pristine.set(i, static_cast<banzai::Value>(0x40000000u + i));

  std::vector<std::uint8_t> frame;
  for (int it = 0; it < iterations; ++it) {
    frame.resize(len_dist(rng));
    for (auto& b : frame) b = static_cast<std::uint8_t>(byte_dist(rng));
    // Bias half the exactly-sized frames toward a valid magic so the kOk
    // and kBadValue arms both get real coverage.
    if (frame.size() == spec.header_bytes && (it & 1)) {
      for (const wire::WireField& f : spec.fields) {
        if (!f.has_expect) continue;
        std::uint32_t v = f.expect;
        if (f.endian == wire::Endian::kBig) {
          for (std::size_t i = f.width; i > 0; --i) {
            frame[f.offset + i - 1] = static_cast<std::uint8_t>(v & 0xff);
            v >>= 8;
          }
        } else {
          for (std::size_t i = 0; i < f.width; ++i) {
            frame[f.offset + i] = static_cast<std::uint8_t>(v & 0xff);
            v >>= 8;
          }
        }
      }
    }
    Packet pkt = pristine;
    const auto r = codec.parse_exact(frame.data(), frame.size(), pkt);
    ++counts[r.status];
    const ParseStatus want = oracle_exact(spec, frame);
    ASSERT_EQ(r.status, want)
        << "codec and oracle disagree on a " << frame.size() << "-byte frame";
    if (!r.ok()) {
      ASSERT_EQ(pkt, pristine)
          << "rejected frame partially wrote the packet ("
          << wire::to_string(r.status) << ")";
    }
  }
}

TEST(WireFuzzTest, RandomFramesAreParsedOrCleanlyRejectedEveryCorpusSpec) {
  // Every corpus spec, 20k frames each: exact classification agreement with
  // the oracle, untouched packets on rejection, and exact accounting
  // (offered == sum of status counts — no third outcome).
  constexpr int kIterations = 20000;
  std::mt19937 rng(20260808);
  for (const auto& alg : algorithms::corpus()) {
    const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
    banzai::FieldTable ft;
    for (const wire::WireField& f : spec.fields)
      if (!f.has_expect) ft.intern(f.name);
    const WireCodec codec(spec, ft);
    std::map<ParseStatus, std::uint64_t> counts;
    sweep(spec, codec, rng, kIterations, spec.header_bytes + 4, counts);
    if (HasFatalFailure()) return;
    std::uint64_t total = 0;
    for (const auto& [st, n] : counts) total += n;
    ASSERT_EQ(total, static_cast<std::uint64_t>(kIterations)) << alg.name;
    // The sweep's length range straddles the header, so every arm fires.
    EXPECT_GT(counts.count(ParseStatus::kOk) ? counts.at(ParseStatus::kOk) : 0,
              0u)
        << alg.name;
    EXPECT_GT(counts.count(ParseStatus::kTruncated)
                  ? counts.at(ParseStatus::kTruncated)
                  : 0,
              0u)
        << alg.name;
    EXPECT_GT(counts.count(ParseStatus::kOversized)
                  ? counts.at(ParseStatus::kOversized)
                  : 0,
              0u)
        << alg.name;
  }
}

TEST(WireFuzzTest, MutatedValidFramesClassifyByWhatTheMutationHit) {
  // Start from a valid frame and flip one byte / truncate / extend at
  // random: the verdict must track exactly whether the damage landed on a
  // const-checked byte, shortened the frame, or lengthened it.
  const auto& alg = algorithms::algorithm("heavy_hitters");
  const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  banzai::FieldTable ft;
  for (const wire::WireField& f : spec.fields)
    if (!f.has_expect) ft.intern(f.name);
  const WireCodec codec(spec, ft);

  std::mt19937 rng(777);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  Packet seed_pkt(ft.size());
  for (std::size_t i = 0; i < ft.size(); ++i)
    seed_pkt.set(i, static_cast<banzai::Value>(i * 2654435761u));
  const std::vector<std::uint8_t> valid = codec.deparse(seed_pkt);
  ASSERT_EQ(oracle_exact(spec, valid), ParseStatus::kOk);

  Packet pkt(ft.size());
  for (int it = 0; it < 30000; ++it) {
    std::vector<std::uint8_t> frame = valid;
    switch (it % 3) {
      case 0: {  // flip one byte
        const std::size_t pos = static_cast<std::size_t>(
            std::uniform_int_distribution<std::size_t>(
                0, frame.size() - 1)(rng));
        frame[pos] ^= static_cast<std::uint8_t>(1 + byte_dist(rng) % 255);
        break;
      }
      case 1:  // truncate
        frame.resize(std::uniform_int_distribution<std::size_t>(
            0, frame.size() - 1)(rng));
        break;
      default:  // extend with junk
        frame.push_back(static_cast<std::uint8_t>(byte_dist(rng)));
        break;
    }
    const auto r = codec.parse_exact(frame.data(), frame.size(), pkt);
    ASSERT_EQ(r.status, oracle_exact(spec, frame)) << "iteration " << it;
    if (r.status == ParseStatus::kBadValue) {
      ASSERT_EQ(r.field, "magic") << "only const-checked fields can be bad";
    }
  }
}

TEST(WireFuzzTest, ServiceByteIngestAccountsForEveryOfferedFrame) {
  // The accounting invariant end to end: offered == parsed + rejected,
  // delivered egress frames == parsed, per-reason counters sum exactly, and
  // garbage never wedges or kills the workers.
  const auto& alg = algorithms::algorithm("flowlets");
  auto compiled =
      domino::compile(alg.source, *atoms::find_target("banzai-praw"));
  const auto& ft = compiled.machine().fields();
  const WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const WireCodec>(spec, ft);
  auto tx =
      std::make_shared<const WireCodec>(spec, ft, compiled.output_map());

  banzai::ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.num_slots = 8;
  cfg.batch_size = 64;
  cfg.ring_capacity = 256;
  cfg.flow_key = {ft.id_of("sport"), ft.id_of("dport")};
  banzai::FleetService svc(compiled.machine(), cfg);
  svc.set_wire(rx, tx);
  svc.start();

  std::mt19937 rng(31337);
  std::uniform_int_distribution<std::size_t> len_dist(
      0, spec.header_bytes + 3);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  constexpr std::uint64_t kOffered = 50000;
  std::uint64_t want_parsed = 0;
  std::vector<std::uint8_t> frame;
  std::size_t drained = 0;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    frame.resize(len_dist(rng));
    for (auto& b : frame) b = static_cast<std::uint8_t>(byte_dist(rng));
    if (frame.size() == spec.header_bytes && (i & 1)) {
      frame[0] = 0xD0;  // flowlets magic 0xD003, network order
      frame[1] = 0x03;
    }
    const auto in = svc.ingest_frame(frame.data(), frame.size());
    ASSERT_EQ(in.parse.status, oracle_exact(spec, frame)) << "frame " << i;
    if (in.parse.ok()) {
      ++want_parsed;
      ASSERT_TRUE(in.accepted) << "Block backpressure never drops";
    }
    if ((i & 0xfff) == 0) drained += svc.drain_egress_frames().size();
  }
  svc.flush();
  drained += svc.drain_egress_frames().size();
  const auto st = svc.stats();
  svc.stop();

  EXPECT_EQ(st.wire.frames_parsed, want_parsed);
  EXPECT_EQ(st.wire.frames_parsed + st.wire.frames_rejected, kOffered);
  EXPECT_EQ(st.wire.frames_rejected, st.wire.reject_truncated +
                                         st.wire.reject_oversized +
                                         st.wire.reject_bad_value);
  EXPECT_EQ(drained, want_parsed) << "every parsed frame must egress";
  EXPECT_EQ(st.wire.bytes_in, want_parsed * rx->header_bytes());
  EXPECT_EQ(st.wire.bytes_out, want_parsed * tx->header_bytes());
  EXPECT_EQ(st.ingested, want_parsed)
      << "rejected frames must never reach the rings";
  EXPECT_EQ(st.delivered, want_parsed);
}

TEST(WireFuzzTest, PcapReaderSurvivesArbitraryBlobs) {
  // Random blobs and mutated/truncated real captures: read_pcap must always
  // return (ok or typed error), never crash or over-read, and on truncation
  // keep exactly the records that precede the damage.
  std::mt19937 rng(4096);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<std::size_t> len_dist(0, 200);
  for (int it = 0; it < 20000; ++it) {
    std::vector<std::uint8_t> blob(len_dist(rng));
    for (auto& b : blob) b = static_cast<std::uint8_t>(byte_dist(rng));
    const auto r = wire::read_pcap(blob.data(), blob.size());
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty());
    }
    EXPECT_LE(r.bytes_consumed, blob.size());
  }

  // A real three-record capture truncated at every possible length.
  wire::PcapFile file;
  for (int i = 0; i < 3; ++i) {
    wire::PcapPacket p;
    p.bytes.assign(static_cast<std::size_t>(5 + i),
                   static_cast<std::uint8_t>(0xC0 + i));
    file.packets.push_back(std::move(p));
  }
  const std::vector<std::uint8_t> whole = wire::write_pcap(file);
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    const auto r = wire::read_pcap(whole.data(), cut);
    if (cut == whole.size()) {
      EXPECT_TRUE(r.ok()) << r.error;
      EXPECT_EQ(r.file.packets.size(), 3u);
    } else if (r.ok()) {
      // A cut that lands exactly on a record boundary parses clean with a
      // prefix of the records.
      EXPECT_LT(r.file.packets.size(), 3u);
      EXPECT_EQ(r.bytes_consumed, cut);
    } else {
      EXPECT_FALSE(r.error.empty());
    }
    for (std::size_t i = 0; i < r.file.packets.size(); ++i)
      EXPECT_EQ(r.file.packets[i].bytes, file.packets[i].bytes)
          << "cut " << cut << " record " << i;
  }
}

}  // namespace
