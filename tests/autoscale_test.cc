// The control loop: Autoscaler threshold/hysteresis/cooldown semantics on a
// fake clock, ServiceSampler delta math, heavy-hitter recall on Zipf traffic
// at the documented table size, and the AutoscalingService reshard cycle —
// forced 2→4→8→2 and controller-driven — pinned bit-exact against a
// sequential per-slot reference.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "banzai/autoscale.h"
#include "sim/partition.h"
#include "sim/zipf.h"
#include "test_util.h"
#include "wire/codec.h"

namespace {

using banzai::Autoscaler;
using banzai::AutoscalerConfig;
using banzai::AutoscalingService;
using banzai::AutoscalingServiceConfig;
using banzai::Backpressure;
using banzai::FieldId;
using banzai::Machine;
using banzai::Packet;
using banzai::ServiceSample;
using banzai::ServiceSampler;
using banzai::ServiceStats;
using banzai::SpaceSaving;
using std::chrono::milliseconds;

using TimePoint = Autoscaler::TimePoint;

TimePoint t0() { return TimePoint{}; }

AutoscalerConfig controller_config() {
  AutoscalerConfig cfg;
  cfg.min_shards = 2;
  cfg.max_shards = 8;
  cfg.queue_frac_high = 0.75;
  cfg.queue_frac_low = 0.10;
  cfg.sustain = 3;
  cfg.cooldown = milliseconds(500);
  return cfg;
}

// ---------------------------------------------------------------------------
// Autoscaler on a fake clock.
// ---------------------------------------------------------------------------

TEST(AutoscalerTest, ExactlyOneActionPerSustainedCrossing) {
  Autoscaler ctl(controller_config());
  TimePoint now = t0();
  // Two hot samples: below sustain, no action.
  EXPECT_EQ(ctl.observe(2, 0.9, 0, now += milliseconds(50)), 2u);
  EXPECT_EQ(ctl.observe(2, 0.9, 0, now += milliseconds(50)), 2u);
  // Third consecutive hot sample: the one doubling for this crossing.
  EXPECT_EQ(ctl.observe(2, 0.9, 0, now += milliseconds(50)), 4u);
  EXPECT_EQ(ctl.scale_ups(), 1u);
  // Still hot, but inside the cooldown: streaks accumulate, no action.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(ctl.observe(4, 0.9, 0, now += milliseconds(50)), 4u);
  EXPECT_EQ(ctl.scale_ups(), 1u);
  // Cooldown passed and the pressure is sustained: the next doubling.
  EXPECT_EQ(ctl.observe(4, 0.9, 0, now += milliseconds(500)), 8u);
  EXPECT_EQ(ctl.scale_ups(), 2u);
  // At max_shards further pressure holds, never overshoots.
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(ctl.observe(8, 0.95, 0, now += milliseconds(500)), 8u);
  EXPECT_EQ(ctl.scale_ups(), 2u);
}

TEST(AutoscalerTest, HysteresisBandPreventsFlapping) {
  Autoscaler ctl(controller_config());
  TimePoint now = t0();
  // Samples inside the band (neither >= 0.75 nor <= 0.10) never act, and
  // they reset any partial streak.
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(ctl.observe(4, 0.4, 0, now += milliseconds(50)), 4u);
  // Oscillating hot/band/hot/band: the streak can never reach sustain.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ctl.observe(4, 0.9, 0, now += milliseconds(50)), 4u);
    EXPECT_EQ(ctl.observe(4, 0.9, 0, now += milliseconds(50)), 4u);
    EXPECT_EQ(ctl.observe(4, 0.4, 0, now += milliseconds(50)), 4u);
  }
  // Hot-then-idle alternation crosses the whole band and still never acts.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ctl.observe(4, 0.9, 0, now += milliseconds(50)), 4u);
    EXPECT_EQ(ctl.observe(4, 0.0, 0, now += milliseconds(50)), 4u);
  }
  EXPECT_EQ(ctl.scale_ups(), 0u);
  EXPECT_EQ(ctl.scale_downs(), 0u);
}

TEST(AutoscalerTest, CooldownClampsBackToBackActions) {
  Autoscaler ctl(controller_config());
  TimePoint now = t0();
  for (int i = 0; i < 2; ++i) ctl.observe(2, 1.0, 0, now += milliseconds(10));
  ASSERT_EQ(ctl.observe(2, 1.0, 0, now += milliseconds(10)), 4u);
  // 499ms of sustained pressure after the action: still clamped.
  for (int i = 0; i < 499 / 10; ++i)
    EXPECT_EQ(ctl.observe(4, 1.0, 0, now += milliseconds(10)), 4u);
  // One more step crosses the 500ms cooldown.
  EXPECT_EQ(ctl.observe(4, 1.0, 0, now += milliseconds(20)), 8u);
}

TEST(AutoscalerTest, ScaleDownNeedsBothSignalsLowAndClampsAtMin) {
  AutoscalerConfig cfg = controller_config();
  cfg.p99_ticks_high = 1000;  // enable the latency signal
  cfg.p99_ticks_low = 50;
  Autoscaler ctl(cfg);
  TimePoint now = t0();
  // Queue idle but latency still above the low mark: not "low", no action.
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(ctl.observe(8, 0.0, 500, now += milliseconds(600)), 8u);
  EXPECT_EQ(ctl.scale_downs(), 0u);
  // Both signals low for sustain samples: halve.
  ctl.observe(8, 0.0, 10, now += milliseconds(600));
  ctl.observe(8, 0.0, 10, now += milliseconds(600));
  EXPECT_EQ(ctl.observe(8, 0.0, 10, now += milliseconds(600)), 4u);
  // Walk down to min_shards and clamp there.
  for (int i = 0; i < 3; ++i) ctl.observe(4, 0.0, 10, now += milliseconds(600));
  for (int i = 0; i < 20; ++i)
    EXPECT_LE(ctl.observe(2, 0.0, 10, now += milliseconds(600)), 2u);
  EXPECT_GE(ctl.scale_downs(), 2u);
}

TEST(AutoscalerTest, LatencySignalAloneTriggersScaleUp) {
  AutoscalerConfig cfg = controller_config();
  cfg.p99_ticks_high = 1000;
  Autoscaler ctl(cfg);
  TimePoint now = t0();
  ctl.observe(2, 0.0, 5000, now += milliseconds(50));
  ctl.observe(2, 0.0, 5000, now += milliseconds(50));
  EXPECT_EQ(ctl.observe(2, 0.0, 5000, now += milliseconds(50)), 4u);
}

// ---------------------------------------------------------------------------
// ServiceSampler delta math.
// ---------------------------------------------------------------------------

TEST(ServiceSamplerTest, RatesComeFromDeltasAndWindowIsBounded) {
  ServiceSampler sampler(4);
  ServiceStats st;
  st.ingested = 1000;
  st.delivered = 900;
  st.queue_depth = {10, 30};
  TimePoint now = t0() + milliseconds(1000);
  ServiceSample first = sampler.push(st, /*ring_capacity=*/128, now);
  EXPECT_EQ(first.dt_seconds, 0.0);
  EXPECT_EQ(first.ingest_rate, 0.0);
  EXPECT_EQ(first.max_queue_depth, 30u);
  EXPECT_NEAR(first.queue_frac, 30.0 / 128.0, 1e-9);

  st.ingested = 3000;
  st.delivered = 2400;
  st.dropped = 100;
  ServiceSample second = sampler.push(st, 128, now + milliseconds(500));
  EXPECT_NEAR(second.dt_seconds, 0.5, 1e-9);
  EXPECT_NEAR(second.ingest_rate, 2000 / 0.5, 1e-6);
  EXPECT_NEAR(second.delivery_rate, 1500 / 0.5, 1e-6);
  EXPECT_NEAR(second.drop_rate, 100 / 0.5, 1e-6);

  // A counter that goes backwards (service generation swap) clamps to 0
  // instead of producing a negative rate.
  st.ingested = 50;
  ServiceSample third = sampler.push(st, 128, now + milliseconds(1000));
  EXPECT_EQ(third.ingest_rate, 0.0);

  for (int i = 0; i < 10; ++i)
    sampler.push(st, 128, now + milliseconds(2000 + i));
  EXPECT_EQ(sampler.window().size(), 4u);
  EXPECT_EQ(sampler.latest()->at, now + milliseconds(2009));
}

// ---------------------------------------------------------------------------
// Heavy-hitter recall on Zipf traffic at the documented table size.
// ---------------------------------------------------------------------------

// docs/OBSERVABILITY.md documents the sizing rule: a flow is guaranteed a
// table entry once its true count exceeds N/capacity, so report top-k
// reliably by sizing capacity > N / count(rank k) — about 12x k on Zipf(1.2)
// traffic.  Pin exactly that setting: k = 10, capacity = 128, 200k samples
// over 10k distinct flows (rank-10 count ≈ 2.3k > 200k/128 ≈ 1.6k).
TEST(HeavyHitterRecallTest, TopTenRecallAtLeastPointNineOnZipf) {
  constexpr std::size_t kFlows = 10000;
  constexpr std::size_t kK = 10;
  constexpr std::size_t kCapacity = 128;
  constexpr int kSamples = 200000;

  netsim::Zipf zipf(kFlows, 1.2);
  netsim::Xoshiro256 rng(42);
  SpaceSaving ss(kCapacity);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t key = static_cast<std::uint64_t>(zipf.sample(rng));
    ++truth[key];
    ss.offer(key);
  }

  // True top-k by count (ties by key, matching SpaceSaving::top order).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(truth.begin(),
                                                              truth.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::set<std::uint64_t> true_top;
  for (std::size_t i = 0; i < kK && i < ranked.size(); ++i)
    true_top.insert(ranked[i].first);

  std::size_t hits = 0;
  for (const auto& h : ss.top(kK))
    if (true_top.count(h.key)) ++hits;
  EXPECT_GE(hits, (kK * 9) / 10)
      << "top-" << kK << " recall " << hits << "/" << kK << " at capacity "
      << kCapacity;

  // And the error bound holds for every reported entry.
  for (const auto& h : ss.top(kCapacity)) {
    const std::uint64_t real = truth.count(h.key) ? truth.at(h.key) : 0;
    EXPECT_LE(real, h.count);
    EXPECT_GE(real + h.error, h.count);
  }
}

// ---------------------------------------------------------------------------
// AutoscalingService: reshard cycles, bit-exact.
// ---------------------------------------------------------------------------

struct ServiceFixture {
  domino::CompileResult compiled;
  FieldId flow_field;
  std::vector<Packet> trace;

  explicit ServiceFixture(int packets)
      : compiled(domino::compile(
            algorithms::algorithm("flowlets").source,
            *test_util::least_target(algorithms::algorithm("flowlets").source))),
        flow_field(compiled.machine().fields().id_of("sport")) {
    const auto& alg = algorithms::algorithm("flowlets");
    const auto& m = compiled.machine();
    std::mt19937 rng(5);
    std::uniform_int_distribution<int> flow(0, 31);
    for (int i = 0; i < packets; ++i) {
      std::map<std::string, banzai::Value> f;
      alg.workload(rng, i, f);
      Packet p(m.fields().size());
      for (const auto& [k, v] : f)
        if (m.fields().try_id_of(k).has_value())
          p.set(m.fields().id_of(k), v);
      p.set(flow_field, 1000 + flow(rng));
      trace.push_back(std::move(p));
    }
  }

  AutoscalingServiceConfig config() const {
    AutoscalingServiceConfig cfg;
    cfg.service.num_shards = 2;
    cfg.service.num_slots = 16;
    cfg.service.batch_size = 32;
    cfg.service.ring_capacity = 256;
    cfg.service.backpressure = Backpressure::kBlock;
    cfg.service.flow_key = {flow_field};
    cfg.autoscaler.min_shards = 1;
    cfg.autoscaler.max_shards = 8;
    // Tests drive the loop explicitly (tick() or reshard_to()); keep
    // ingest() from also sampling on the real clock underneath them.
    cfg.tick_stride = std::size_t{1} << 60;
    return cfg;
  }

  // Sequential reference over the same slot mapping (16 slots).
  std::vector<Packet> reference_egress() const {
    std::vector<Machine> slots;
    for (std::size_t v = 0; v < 16; ++v)
      slots.push_back(compiled.machine().clone());
    std::vector<Packet> out;
    out.reserve(trace.size());
    for (const Packet& p : trace) {
      const std::uint64_t h = netsim::mix64(static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(p.get(flow_field))));
      out.push_back(slots[h % 16].process(p));
    }
    return out;
  }
};

TEST(AutoscalingServiceTest, ForcedReshardCycleIsBitExact) {
  ServiceFixture fx(4000);
  AutoscalingService svc(fx.compiled.machine(), fx.config());
  const auto expected = fx.reference_egress();

  svc.start();
  std::vector<Packet> egress;
  const std::size_t quarter = fx.trace.size() / 4;
  const std::size_t targets[3] = {4, 8, 2};  // forced 2→4→8→2
  for (std::size_t seg = 0; seg < 4; ++seg) {
    const std::size_t begin = seg * quarter;
    const std::size_t end = seg == 3 ? fx.trace.size() : begin + quarter;
    for (std::size_t i = begin; i < end; ++i) svc.ingest(fx.trace[i]);
    if (seg < 3) {
      svc.reshard_to(targets[seg]);
      EXPECT_EQ(svc.num_shards(), targets[seg]);
      EXPECT_TRUE(svc.running());
    }
    for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));
  }
  svc.flush();
  svc.stop();
  for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));

  EXPECT_EQ(svc.reshards(), 3u);
  ASSERT_EQ(egress.size(), expected.size());
  for (std::size_t i = 0; i < egress.size(); ++i)
    ASSERT_EQ(egress[i], expected[i]) << "packet " << i;

  // Counters survived the generation swaps: the continuous-service view
  // accounts for every packet.
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.ingested, fx.trace.size());
  EXPECT_EQ(st.delivered, fx.trace.size());
  EXPECT_EQ(st.dropped, 0u);
  if (Machine::stage_counters_enabled()) {
    ASSERT_FALSE(st.stage_counters.empty());
    for (std::size_t s = 0; s < st.stage_counters.size(); ++s)
      EXPECT_EQ(st.stage_counters[s].packets, fx.trace.size())
          << "stage " << s;
  }
}

// Drive the closed loop deterministically through tick(): with the high
// threshold at 0 every sample reads "hot", so the controller must walk
// 2→4→8 exactly as fast as sustain + cooldown allow — and with the
// thresholds flipped to always-low it walks back down.  Egress stays
// bit-exact throughout, proving controller-initiated reshards preserve the
// contract without any manual snapshot/restore call.
TEST(AutoscalingServiceTest, ControllerDrivenReshardsStayBitExact) {
  ServiceFixture fx(6000);
  AutoscalingServiceConfig cfg = fx.config();
  cfg.autoscaler.min_shards = 2;
  cfg.autoscaler.queue_frac_high = 0.0;  // every sample is a crossing
  cfg.autoscaler.queue_frac_low = -1.0;  // never "low"
  cfg.autoscaler.sustain = 2;
  cfg.autoscaler.cooldown = milliseconds(100);
  // Keep ingest() from sampling on the real clock: this test owns the loop
  // through explicit tick() calls on synthetic time points.
  cfg.tick_stride = std::size_t{1} << 60;

  AutoscalingService svc(fx.compiled.machine(), cfg);
  const auto expected = fx.reference_egress();
  svc.start();

  std::vector<Packet> egress;
  TimePoint now = t0() + milliseconds(10000);
  const std::size_t chunk = 500;
  for (std::size_t off = 0; off < fx.trace.size(); off += chunk) {
    const std::size_t end = std::min(off + chunk, fx.trace.size());
    for (std::size_t i = off; i < end; ++i) svc.ingest(fx.trace[i]);
    svc.tick(now += milliseconds(120));  // past cooldown every sample
    for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));
  }
  svc.flush();
  svc.stop();
  for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));

  // sustain=2 with every sample hot: first action on the 2nd tick, then one
  // per 2 ticks (streak rebuild) — plenty of ticks, so we reach max.
  EXPECT_EQ(svc.num_shards(), 8u);
  EXPECT_GE(svc.autoscaler().scale_ups(), 2u);
  EXPECT_EQ(svc.autoscaler().scale_downs(), 0u);

  ASSERT_EQ(egress.size(), expected.size());
  for (std::size_t i = 0; i < egress.size(); ++i)
    ASSERT_EQ(egress[i], expected[i]) << "packet " << i;

  // Flip the thresholds: every sample is now "low"; the controller walks
  // back down to min_shards, still bit-exact (state keeps evolving).
  AutoscalingServiceConfig down = cfg;
  down.autoscaler.queue_frac_high = 2.0;  // never high
  down.autoscaler.queue_frac_low = 2.0;   // always low
  down.service.num_shards = 8;
  ServiceFixture fx2(3000);
  AutoscalingService shrink(fx2.compiled.machine(), down);
  const auto expected2 = fx2.reference_egress();
  shrink.start();
  std::vector<Packet> egress2;
  for (std::size_t off = 0; off < fx2.trace.size(); off += chunk) {
    const std::size_t end = std::min(off + chunk, fx2.trace.size());
    for (std::size_t i = off; i < end; ++i) shrink.ingest(fx2.trace[i]);
    shrink.tick(now += milliseconds(120));
    for (auto& p : shrink.drain_egress()) egress2.push_back(std::move(p));
  }
  shrink.flush();
  shrink.stop();
  for (auto& p : shrink.drain_egress()) egress2.push_back(std::move(p));

  EXPECT_EQ(shrink.num_shards(), 2u);
  EXPECT_GE(shrink.autoscaler().scale_downs(), 2u);
  ASSERT_EQ(egress2.size(), expected2.size());
  for (std::size_t i = 0; i < egress2.size(); ++i)
    ASSERT_EQ(egress2[i], expected2[i]) << "packet " << i;
}

// The wire path scales too: frames in, frames out, through forced reshards.
// set_wire() hands the codecs to every future generation, reshard_to() must
// drain the retiring generation's settled egress as frames (not packets),
// and the folded wire counters must account for every frame across the
// generation swaps.
TEST(AutoscalingServiceTest, WireFramePathSurvivesReshardsBitExact) {
  ServiceFixture fx(3000);
  const auto& alg = algorithms::algorithm("flowlets");
  const auto& ft = fx.compiled.machine().fields();
  const wire::WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const wire::WireCodec>(spec, ft);
  auto tx = std::make_shared<const wire::WireCodec>(spec, ft,
                                                    fx.compiled.output_map());

  std::vector<std::vector<std::uint8_t>> expected;
  for (const Packet& p : fx.reference_egress())
    expected.push_back(tx->deparse(p));

  AutoscalingService svc(fx.compiled.machine(), fx.config());
  svc.set_wire(rx, tx);
  svc.start();

  std::vector<std::vector<std::uint8_t>> egress;
  const std::vector<std::uint8_t> runt = {0xD0};
  std::uint64_t rejected = 0;
  const std::size_t quarter = fx.trace.size() / 4;
  const std::size_t targets[3] = {4, 8, 2};  // forced 2→4→8→2
  for (std::size_t seg = 0; seg < 4; ++seg) {
    const std::size_t begin = seg * quarter;
    const std::size_t end = seg == 3 ? fx.trace.size() : begin + quarter;
    for (std::size_t i = begin; i < end; ++i) {
      const std::vector<std::uint8_t> frame = rx->deparse(fx.trace[i]);
      const auto in = svc.ingest_frame(frame.data(), frame.size());
      ASSERT_TRUE(in.parse.ok());
      ASSERT_TRUE(in.accepted);
      if (i % 500 == 0) {  // malformed runts must reject, typed and counted
        EXPECT_FALSE(svc.ingest_frame(runt.data(), runt.size()).accepted);
        ++rejected;
      }
    }
    if (seg < 3) {
      svc.reshard_to(targets[seg]);
      EXPECT_EQ(svc.num_shards(), targets[seg]);
    }
    for (auto& f : svc.drain_egress_frames()) egress.push_back(std::move(f));
  }
  svc.flush();
  svc.stop();
  for (auto& f : svc.drain_egress_frames()) egress.push_back(std::move(f));

  EXPECT_EQ(svc.reshards(), 3u);
  ASSERT_EQ(egress.size(), expected.size());
  for (std::size_t i = 0; i < egress.size(); ++i)
    ASSERT_EQ(egress[i], expected[i]) << "frame " << i;

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.wire.frames_parsed, fx.trace.size());
  EXPECT_EQ(st.wire.frames_rejected, rejected);
  EXPECT_EQ(st.wire.reject_truncated, rejected);
}

TEST(AutoscalingServiceTest, ConfigValidation) {
  ServiceFixture fx(1);
  AutoscalingServiceConfig cfg = fx.config();
  cfg.autoscaler.max_shards = 64;  // > num_slots (16)
  EXPECT_THROW(AutoscalingService(fx.compiled.machine(), cfg),
               std::invalid_argument);
  cfg = fx.config();
  cfg.autoscaler.min_shards = 4;
  cfg.autoscaler.max_shards = 2;
  EXPECT_THROW(AutoscalingService(fx.compiled.machine(), cfg),
               std::invalid_argument);
  // num_shards outside [min, max] is clamped, not an error.
  cfg = fx.config();
  cfg.autoscaler.min_shards = 4;
  cfg.autoscaler.max_shards = 8;
  cfg.service.num_shards = 1;
  AutoscalingService svc(fx.compiled.machine(), cfg);
  EXPECT_EQ(svc.num_shards(), 4u);
}

}  // namespace
