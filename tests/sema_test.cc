#include "core/sema.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "ir/diag.h"

namespace domino {
namespace {

std::string with_body(const std::string& body) {
  return "#define N 8\n"
         "struct Packet { int a; int b; int idx; };\n"
         "int s = 0;\n"
         "int arr[N] = {0};\n"
         "int arr2[N] = {0};\n"
         "void t(struct Packet pkt) {\n" + body + "\n}\n";
}

void expect_sema_error(const std::string& body, const std::string& needle) {
  Program p = parse(with_body(body));
  try {
    analyze(p);
    FAIL() << "expected sema rejection containing: " << needle;
  } catch (const CompileError& e) {
    EXPECT_EQ(e.phase(), CompilePhase::kSema) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

void expect_ok(const std::string& body) {
  Program p = parse(with_body(body));
  EXPECT_NO_THROW(analyze(p));
}

TEST(SemaTest, ValidProgramAccepted) {
  expect_ok("pkt.idx = hash2(pkt.a, pkt.b) % N;\n"
            "arr[pkt.idx] = arr[pkt.idx] + 1;\n"
            "s = s + 1;");
}

TEST(SemaTest, UndeclaredPacketFieldRejected) {
  expect_sema_error("pkt.zzz = 1;", "zzz");
}

TEST(SemaTest, UndeclaredPacketFieldInExprRejected) {
  expect_sema_error("pkt.a = pkt.nope;", "nope");
}

TEST(SemaTest, UndeclaredStateRejected) {
  expect_sema_error("ghost = 1;", "ghost");
}

TEST(SemaTest, ArrayWithoutIndexRejected) {
  expect_sema_error("arr = 1;", "without an index");
}

TEST(SemaTest, ScalarWithIndexRejected) {
  expect_sema_error("s[pkt.a] = 1;", "scalar");
}

TEST(SemaTest, UnknownIntrinsicRejected) {
  expect_sema_error("pkt.a = frobnicate(pkt.b);", "frobnicate");
}

TEST(SemaTest, IntrinsicArityRejected) {
  expect_sema_error("pkt.a = hash2(pkt.b);", "2 arguments");
}

TEST(SemaTest, IntrinsicCorrectArityAccepted) {
  expect_ok("pkt.a = hash3(pkt.a, pkt.b, 3);");
}

TEST(SemaTest, DifferentIndicesSameArrayRejected) {
  // Table 1: all accesses to a given array must use the same index.
  expect_sema_error("arr[pkt.a] = 1; pkt.b = arr[pkt.b];",
                    "two different indices");
}

TEST(SemaTest, SameIndexTwiceAccepted) {
  expect_ok("arr[pkt.a] = arr[pkt.a] + 1;");
}

TEST(SemaTest, DifferentArraysDifferentIndicesAccepted) {
  expect_ok("arr[pkt.a] = 1; arr2[pkt.b] = 2;");
}

TEST(SemaTest, StateInIndexRejected) {
  expect_sema_error("arr[s] = 1;", "reads state");
}

TEST(SemaTest, IndexFieldReassignedRejected) {
  expect_sema_error(
      "pkt.idx = 1; arr[pkt.idx] = 1; pkt.idx = 2; pkt.a = arr[pkt.idx];",
      "more than once");
}

TEST(SemaTest, IndexFieldAssignedAfterUseRejected) {
  expect_sema_error("arr[pkt.idx] = 1; pkt.idx = 2;",
                    "at or after the array's first access");
}

TEST(SemaTest, IndexFieldAssignedBeforeUseAccepted) {
  expect_ok("pkt.idx = hash2(pkt.a, pkt.b) % N; arr[pkt.idx] = 1;");
}

TEST(SemaTest, PureInputIndexFieldAccepted) {
  expect_ok("arr[pkt.idx] = 1;");
}

TEST(SemaTest, StateFieldNameCollisionRejected) {
  Program p = parse(
      "struct Packet { int s; };\nint s = 0;\nvoid t(struct Packet pkt) { "
      "pkt.s = 1; }");
  EXPECT_THROW(analyze(p), CompileError);
}

TEST(SemaTest, ConditionsMayReadState) {
  expect_ok("if (s > 3) { s = 0; }");
}

TEST(SemaTest, NestedConditionsAccepted) {
  expect_ok("if (pkt.a) { if (s < 5) { s = s + 1; } }");
}

}  // namespace
}  // namespace domino
