// Tests for the Banzai machine substrate: packets, state, stages with
// parallel atom semantics, and the cycle-accurate pipeline simulator.
#include <gtest/gtest.h>

#include "banzai/machine.h"
#include "banzai/packet.h"
#include "banzai/sim.h"
#include "banzai/state.h"

namespace banzai {
namespace {

TEST(FieldTableTest, InternIsIdempotent) {
  FieldTable ft;
  EXPECT_EQ(ft.intern("a"), ft.intern("a"));
  EXPECT_NE(ft.intern("a"), ft.intern("b"));
  EXPECT_EQ(ft.size(), 2u);
}

TEST(FieldTableTest, IdOfUnknownThrows) {
  FieldTable ft;
  EXPECT_THROW(ft.id_of("missing"), std::out_of_range);
  EXPECT_FALSE(ft.try_id_of("missing").has_value());
}

TEST(PacketTest, FieldsStartZeroed) {
  Packet p(4);
  for (FieldId i = 0; i < 4; ++i) EXPECT_EQ(p.get(i), 0);
}

TEST(PacketTest, EqualityIsValueBased) {
  Packet a(2), b(2);
  EXPECT_EQ(a, b);
  a.set(1, 5);
  EXPECT_NE(a, b);
  b.set(1, 5);
  EXPECT_EQ(a, b);
}

TEST(StateVarTest, ScalarLoadStore) {
  StateVar v(1, /*scalar=*/true, 42);
  EXPECT_EQ(v.load_scalar(), 42);
  v.store_scalar(-7);
  EXPECT_EQ(v.load_scalar(), -7);
}

TEST(StateVarTest, ArrayInitializerFillsAllCells) {
  StateVar v(8, /*scalar=*/false, 3);
  for (Value i = 0; i < 8; ++i) EXPECT_EQ(v.load(i), 3);
}

TEST(StateVarTest, OutOfRangeIndexWraps) {
  StateVar v(8, false);
  v.store(9, 5);  // 9 mod 8 == 1
  EXPECT_EQ(v.load(1), 5);
  v.store(-1, 7);  // interpreted as unsigned, wraps deterministically
  EXPECT_EQ(v.load(-1), 7);
}

TEST(StateStoreTest, DeclareAndAccess) {
  StateStore s;
  s.declare("x", 1, true, 10);
  s.declare("arr", 16, false);
  EXPECT_TRUE(s.contains("x"));
  EXPECT_FALSE(s.contains("y"));
  EXPECT_EQ(s.var("x").load_scalar(), 10);
  EXPECT_EQ(s.var("arr").size(), 16u);
  EXPECT_THROW(s.var("y"), std::out_of_range);
}

// restore() guards every migration and reshard in the repo: a snapshot whose
// shape differs in ANY way — missing var, extra var, different cell count,
// scalar flag flipped — must throw and leave the target store byte-for-byte
// untouched, because a half-applied restore would silently corrupt a slot.
TEST(StateStoreTest, RestoreRejectsShapeMismatchAndLeavesStoreUntouched) {
  StateStore target;
  target.declare("x", 1, true, 10);
  target.declare("arr", 4, false);
  target.var("arr").store(2, -7);
  const std::uint64_t gen_before = target.generation();

  StateStore missing_var;
  missing_var.declare("x", 1, true);

  StateStore extra_var;
  extra_var.declare("x", 1, true);
  extra_var.declare("arr", 4, false);
  extra_var.declare("stowaway", 1, true);

  StateStore wrong_size;
  wrong_size.declare("x", 1, true);
  wrong_size.declare("arr", 8, false);

  StateStore wrong_scalar;
  wrong_scalar.declare("x", 1, false);
  wrong_scalar.declare("arr", 4, false);

  for (const StateStore* bad :
       {&missing_var, &extra_var, &wrong_size, &wrong_scalar}) {
    EXPECT_THROW(target.restore(*bad), std::invalid_argument);
    EXPECT_EQ(target.var("x").load_scalar(), 10);
    EXPECT_EQ(target.var("arr").load(2), -7);
    EXPECT_FALSE(target.contains("stowaway"));
    EXPECT_EQ(target.generation(), gen_before)
        << "a rejected restore must not bump the generation";
  }

  // Same shape with different values is exactly what restore is for.
  StateStore good;
  good.declare("x", 1, true, 99);
  good.declare("arr", 4, false);
  EXPECT_NO_THROW(target.restore(good));
  EXPECT_EQ(target.var("x").load_scalar(), 99);
  EXPECT_EQ(target.var("arr").load(2), 0);
  EXPECT_NE(target.generation(), gen_before);
}

// ---- stage semantics --------------------------------------------------------

// Two atoms that each read field 0 of the stage input and write fields 1 / 2.
// Parallel semantics: both must observe the value at stage entry even though
// atom 1 "writes" field 0's consumer later.
TEST(StageTest, AtomsReadStageInputNotEachOther) {
  FieldTable ft;
  const FieldId f_in = ft.intern("in");
  const FieldId f_a = ft.intern("a");
  const FieldId f_b = ft.intern("b");

  Stage stage;
  ConfiguredAtom a1;
  a1.exec = [=](const Packet& in, Packet& out, StateStore&) {
    out.set(f_a, in.get(f_in) + 1);
  };
  ConfiguredAtom a2;
  a2.exec = [=](const Packet& in, Packet& out, StateStore&) {
    // must see the original `in`, not a1's output
    out.set(f_b, in.get(f_a) * 10);
  };
  stage.atoms = {a1, a2};

  StateStore store;
  Packet p(ft.size());
  p.set(f_in, 5);
  p.set(f_a, 100);
  Packet out = stage.execute(p, store);
  EXPECT_EQ(out.get(f_a), 6);
  EXPECT_EQ(out.get(f_b), 1000);  // read the stage input value of `a`
}

// ---- pipeline simulation ------------------------------------------------------

// A machine whose single stateful atom counts packets; used to verify that
// overlapped execution is serializable.
Machine make_counter_machine(std::size_t stages) {
  FieldTable ft;
  const FieldId f_seq = ft.intern("seq");
  const FieldId f_count = ft.intern("count");
  Machine m(MachineSpec{"test", "RAW", stages, 300, 10}, FieldTable{});
  m.state().declare("c", 1, true, 0);
  std::vector<Stage> sv(stages);
  ConfiguredAtom counter;
  counter.kind = AtomKind::kStateful;
  counter.state_vars = {"c"};
  counter.exec = [=](const Packet&, Packet& out, StateStore& st) {
    auto& v = st.var("c");
    v.store_scalar(v.load_scalar() + 1);
    out.set(f_count, v.load_scalar());
  };
  sv[0].atoms.push_back(counter);
  m.stages() = std::move(sv);
  m.fields() = std::move(ft);
  (void)f_seq;
  return m;
}

TEST(PipelineSimTest, OnePacketPerCycleAndFullOverlap) {
  Machine m = make_counter_machine(4);
  PipelineSim sim(m);
  for (int i = 0; i < 10; ++i) sim.enqueue(Packet(m.fields().size()));
  sim.drain();
  // 10 packets through a 4-stage pipeline: first exits after 5 ticks
  // (enter+4 moves in this model), total = packets + depth.
  EXPECT_EQ(sim.stats().packets_out, 10u);
  EXPECT_EQ(sim.stats().cycles, 10u + 4u);
}

TEST(PipelineSimTest, PacketsExitInOrderWithSequentialState) {
  Machine m = make_counter_machine(3);
  PipelineSim sim(m);
  for (int i = 0; i < 50; ++i) sim.enqueue(Packet(m.fields().size()));
  sim.drain();
  ASSERT_EQ(sim.egress().size(), 50u);
  const FieldId f_count = m.fields().id_of("count");
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(sim.egress()[static_cast<std::size_t>(i)].get(f_count), i + 1);
}

TEST(PipelineSimTest, ProcessEquivalentToSim) {
  Machine m1 = make_counter_machine(4);
  Machine m2 = make_counter_machine(4);
  PipelineSim sim(m1);
  std::vector<Packet> direct;
  for (int i = 0; i < 20; ++i) {
    sim.enqueue(Packet(m1.fields().size()));
    direct.push_back(m2.process(Packet(m2.fields().size())));
  }
  sim.drain();
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(sim.egress()[static_cast<std::size_t>(i)],
              direct[static_cast<std::size_t>(i)]);
  EXPECT_EQ(m1.state(), m2.state());
}

TEST(PipelineSimTest, BusyReflectsInFlightPackets) {
  Machine m = make_counter_machine(3);
  PipelineSim sim(m);
  EXPECT_FALSE(sim.busy());
  sim.enqueue(Packet(m.fields().size()));
  sim.tick();
  EXPECT_TRUE(sim.busy());
  sim.drain();
  EXPECT_FALSE(sim.busy());
}

TEST(PipelineSimTest, BackToBackPacketsTouchStateEveryCycle) {
  // The atom's read-modify-write must be visible to the immediately next
  // packet — the core line-rate requirement of §2.3.
  Machine m = make_counter_machine(1);
  PipelineSim sim(m);
  sim.enqueue(Packet(m.fields().size()));
  sim.enqueue(Packet(m.fields().size()));
  sim.tick();  // packet A in stage 0
  sim.tick();  // packet A out, packet B in stage 0
  sim.tick();
  ASSERT_EQ(sim.egress().size(), 2u);
  const FieldId f_count = m.fields().id_of("count");
  EXPECT_EQ(sim.egress()[0].get(f_count), 1);
  EXPECT_EQ(sim.egress()[1].get(f_count), 2);
}

TEST(MachineTest, AtomAndStageCounts) {
  Machine m = make_counter_machine(4);
  EXPECT_EQ(m.num_stages(), 4u);
  EXPECT_EQ(m.num_atoms(), 1u);
  EXPECT_EQ(m.max_atoms_per_stage(), 1u);
}

}  // namespace
}  // namespace banzai
