// Tests for the P4 back end (§5.1): structure of the generated program and
// the LOC relationship Table 4 reports (P4 is several times longer than the
// Domino source it was generated from).
#include "p4/p4gen.h"

#include <gtest/gtest.h>

#include "algorithms/corpus.h"
#include "core/compiler.h"
#include "core/normalize.h"
#include "core/pipeline.h"

namespace {

struct Generated {
  domino::Program prog;
  domino::CodeletPipeline pipe;
  std::string p4;
};

Generated gen(const std::string& name) {
  Generated g;
  g.prog = domino::parse_and_check(algorithms::algorithm(name).source);
  g.pipe = domino::pipeline_schedule(domino::normalize(g.prog).tac);
  g.p4 = p4gen::emit_p4(g.prog, g.pipe);
  return g;
}

TEST(P4GenTest, EmitsRegistersForEveryStateVariable) {
  Generated g = gen("flowlets");
  EXPECT_NE(g.p4.find("register<bit<32>>(8000) last_time;"),
            std::string::npos);
  EXPECT_NE(g.p4.find("register<bit<32>>(8000) saved_hop;"),
            std::string::npos);
}

TEST(P4GenTest, ScalarStateGetsSingleCellRegister) {
  Generated g = gen("rcp");
  EXPECT_NE(g.p4.find("register<bit<32>>(1) sum_rtt;"), std::string::npos);
}

TEST(P4GenTest, OneTablePerCodelet) {
  Generated g = gen("flowlets");
  std::size_t codelets = 0;
  for (const auto& s : g.pipe.stages) codelets += s.size();
  std::size_t tables = 0;
  for (std::size_t pos = g.p4.find("  table t_"); pos != std::string::npos;
       pos = g.p4.find("  table t_", pos + 1))
    ++tables;
  EXPECT_EQ(tables, codelets);
}

TEST(P4GenTest, ApplyBlockAppliesTablesInStageOrder) {
  Generated g = gen("flowlets");
  const auto s1 = g.p4.find("t_stage1_atom1.apply()");
  const auto s2 = g.p4.find("t_stage2_atom1.apply()");
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(s2, std::string::npos);
  EXPECT_LT(s1, s2);
}

TEST(P4GenTest, StatefulCodeletsUseRegisterReadWrite) {
  Generated g = gen("flowlets");
  EXPECT_NE(g.p4.find("last_time.read("), std::string::npos);
  EXPECT_NE(g.p4.find("last_time.write("), std::string::npos);
}

TEST(P4GenTest, HashIntrinsicBecomesV1ModelHash) {
  Generated g = gen("flowlets");
  EXPECT_NE(g.p4.find("hash(meta.id_v0, HashAlgorithm.crc32"),
            std::string::npos);
  // The hash-unit modulus appears as the max parameter.
  EXPECT_NE(g.p4.find("32w8000"), std::string::npos);
}

TEST(P4GenTest, MetadataHoldsCompilerTemporaries) {
  Generated g = gen("flowlets");
  EXPECT_NE(g.p4.find("bit<32> _br0_v0;"), std::string::npos);
}

TEST(P4GenTest, DeterministicOutput) {
  EXPECT_EQ(gen("conga").p4, gen("conga").p4);
}

TEST(P4GenTest, NoTableModeIsShorter) {
  Generated g = gen("flowlets");
  p4gen::P4Options no_tables;
  no_tables.table_per_action = false;
  const std::string direct = p4gen::emit_p4(g.prog, g.pipe, no_tables);
  EXPECT_LT(p4gen::p4_loc(direct), p4gen::p4_loc(g.p4));
}

TEST(P4GenTest, LocCountIgnoresCommentsAndBlanks) {
  EXPECT_EQ(p4gen::p4_loc("// only a comment\n\n  \n"), 0u);
  EXPECT_EQ(p4gen::p4_loc("a;\n// c\nb;\n"), 2u);
}

// Table 4's qualitative LOC claim: generated P4 is substantially longer than
// the Domino source for every algorithm in the corpus.
class P4LocTest : public ::testing::TestWithParam<std::string> {};

TEST_P(P4LocTest, GeneratedP4SeveralTimesLongerThanDomino) {
  const auto& alg = algorithms::algorithm(GetParam());
  Generated g = gen(GetParam());
  const std::size_t domino_loc = domino::count_loc(alg.source);
  const std::size_t p4_loc = p4gen::p4_loc(g.p4);
  EXPECT_GE(p4_loc, domino_loc * 2)
      << "P4=" << p4_loc << " Domino=" << domino_loc;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, P4LocTest,
    ::testing::Values("bloom_filter", "heavy_hitters", "flowlets", "rcp",
                      "sampled_netflow", "hull", "avq", "stfq",
                      "dns_ttl_tracker", "conga"));

}  // namespace
