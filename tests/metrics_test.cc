// The observability layer: unit tests for the stats primitives (always on),
// emission hygiene for the counter flag (the default native artifact must be
// byte-identical with the flag off), the Prometheus renderers and the TCP
// endpoint — and, in -DDOMINO_STAGE_COUNTERS builds, the metrics-exactness
// suite: per-stage packet counters from the threaded FleetService equal a
// sequential Machine::process reference exactly, on all three engines, plus
// the sum-over-stages invariant (stage 0 packets == ingested − dropped).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "banzai/metrics.h"
#include "banzai/service.h"
#include "banzai/stats.h"
#include "core/emit.h"
#include "sim/queue.h"
#include "test_util.h"

namespace {

using algorithms::AlgorithmInfo;
using banzai::Backpressure;
using banzai::ExecEngine;
using banzai::FieldId;
using banzai::FleetService;
using banzai::LatencyHistogram;
using banzai::Machine;
using banzai::Packet;
using banzai::ServiceConfig;
using banzai::ServiceStats;
using banzai::SpaceSaving;
using banzai::StageCounterRow;
using banzai::StageCounters;

// ---------------------------------------------------------------------------
// Stats primitives (independent of the build flag).
// ---------------------------------------------------------------------------

TEST(StageCountersTest, PrepareAddRowMergeReset) {
  StageCounters c;
  EXPECT_TRUE(c.empty());
  c.prepare(3);
  EXPECT_EQ(c.stages(), 3u);
  c.prepare(2);  // never shrinks
  EXPECT_EQ(c.stages(), 3u);

  c.add(0, 10, 40, 1000);
  c.add(0, 5, 20, 500);
  c.add(2, 1, 2, 3);
  EXPECT_EQ(c.row(0).packets, 15u);
  EXPECT_EQ(c.row(0).ops, 60u);
  EXPECT_EQ(c.row(0).ns, 1500u);
  EXPECT_EQ(c.row(1).packets, 0u);
  EXPECT_EQ(c.row(2).packets, 1u);

  // merge_into grows the target and accumulates.
  std::vector<StageCounterRow> rows;
  c.merge_into(rows);
  c.merge_into(rows);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].packets, 30u);
  EXPECT_EQ(rows[2].ops, 4u);

  c.reset();
  EXPECT_EQ(c.stages(), 3u);  // reset zeroes, keeps the shape
  EXPECT_EQ(c.row(0).packets, 0u);
}

TEST(LatencyHistogramTest, BucketsAndQuantileEdges) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(LatencyHistogram::bucket_edge(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_edge(3), 7u);
  EXPECT_EQ(LatencyHistogram::bucket_edge(64), ~std::uint64_t{0});

  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  std::uint64_t counts[LatencyHistogram::kBuckets] = {};
  std::uint64_t total = 0;
  h.merge_into(counts, total);
  ASSERT_EQ(total, 100u);

  // The quantile is the containing bucket's upper edge: a conservative
  // estimate, at most 2x above the true quantile value.
  const std::uint64_t p50 = banzai::histogram_quantile(counts, total, 0.5);
  const std::uint64_t p99 = banzai::histogram_quantile(counts, total, 0.99);
  EXPECT_GE(p50, 49u);
  EXPECT_LE(p50, 2 * 50u);
  EXPECT_GE(p99, 98u);
  EXPECT_LE(p99, 2 * 99u);

  // Empty histogram: 0, not a crash.
  std::uint64_t zero_counts[LatencyHistogram::kBuckets] = {};
  EXPECT_EQ(banzai::histogram_quantile(zero_counts, 0, 0.99), 0u);
}

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving ss(8);
  for (int i = 0; i < 5; ++i)
    for (int rep = 0; rep <= i; ++rep) ss.offer(100 + i);
  const auto top = ss.top(10);
  ASSERT_EQ(top.size(), 5u);
  // Descending by count; all exact (error 0) because nothing was evicted.
  EXPECT_EQ(top[0].key, 104u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[4].key, 100u);
  EXPECT_EQ(top[4].count, 1u);
  EXPECT_EQ(ss.offered(), 1u + 2 + 3 + 4 + 5);
}

TEST(SpaceSavingTest, OverestimateBoundHoldsUnderEviction) {
  // Heavy flows plus a churn of singletons that forces evictions; every
  // entry must satisfy count - error <= true count <= count.
  SpaceSaving ss(8);
  std::map<std::uint64_t, std::uint64_t> truth;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t key;
    if (i % 3 != 0)
      key = rng() % 4;         // 4 heavy flows
    else
      key = 1000 + rng() % 500;  // long tail
    ++truth[key];
    ss.offer(key);
  }
  for (const auto& h : ss.top(8)) {
    const std::uint64_t real = truth.count(h.key) ? truth[h.key] : 0;
    EXPECT_LE(real, h.count) << "key " << h.key;
    EXPECT_GE(real + h.error, h.count) << "key " << h.key;
  }
  // The 4 heavy flows each exceed N/capacity, so space-saving guarantees
  // their presence.
  const auto top = ss.top(8);
  for (std::uint64_t heavy = 0; heavy < 4; ++heavy) {
    bool present = false;
    for (const auto& h : top) present |= h.key == heavy;
    EXPECT_TRUE(present) << "heavy flow " << heavy << " evicted";
  }
}

// ---------------------------------------------------------------------------
// Emission hygiene: the counter flag must not perturb the default artifact.
// ---------------------------------------------------------------------------

TEST(CounterEmissionTest, DefaultEmissionCarriesNoCounterCode) {
  auto compiled =
      domino::compile(algorithms::algorithm("flowlets").source,
                      *test_util::least_target(
                          algorithms::algorithm("flowlets").source));
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);

  // Byte determinism of the default form (the content-hash cache key), and
  // no trace of the counter machinery in it.
  const std::string plain = domino::emit_native_cc(*kernel);
  EXPECT_EQ(plain, domino::emit_native_cc(*kernel));
  EXPECT_EQ(plain.find("DominoStageCounterRow"), std::string::npos);
  EXPECT_EQ(plain.find("domino_now_ns"), std::string::npos);
  EXPECT_EQ(plain.find("stage_counters"), std::string::npos);

  // An explicit default-options call is the same bytes.
  domino::NativeEmitOptions defaults;
  EXPECT_EQ(plain, domino::emit_native_cc(*kernel, defaults));

  // The counted form carries the extended ABI and the per-stage updates —
  // and is itself deterministic.
  domino::NativeEmitOptions counted;
  counted.stage_counters = true;
  const std::string with = domino::emit_native_cc(*kernel, counted);
  EXPECT_EQ(with, domino::emit_native_cc(*kernel, counted));
  EXPECT_NE(with.find("DominoStageCounterRow"), std::string::npos);
  EXPECT_NE(with.find("domino_now_ns"), std::string::npos);
  EXPECT_NE(with, plain);
}

// ---------------------------------------------------------------------------
// Metrics-exactness differential (DOMINO_STAGE_COUNTERS builds).
// ---------------------------------------------------------------------------

std::vector<std::string> mappable_corpus() {
  std::vector<std::string> names;
  for (const auto& alg : algorithms::corpus())
    if (alg.paper_least_atom != "Doesn't map") names.push_back(alg.name);
  return names;
}

std::vector<Packet> corpus_trace(const AlgorithmInfo& alg, const Machine& m,
                                 int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, i, f);
    Packet p(m.fields().size());
    for (const auto& [k, v] : f)
      if (m.fields().try_id_of(k).has_value()) p.set(m.fields().id_of(k), v);
    out.push_back(std::move(p));
  }
  return out;
}

class MetricsExactnessTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (!Machine::stage_counters_enabled())
      GTEST_SKIP() << "build without -DDOMINO_STAGE_COUNTERS";
  }
};

// Sequential Machine::process on each engine: every packet traverses every
// stage exactly once, so packets[s] == trace size for all s, and the kernel
// and native engines agree on ops (ops is per-micro-op; the closure engine
// counts atom executions, so only its packets column is comparable).
TEST_P(MetricsExactnessTest, SequentialCountersExactPerEngine) {
  const AlgorithmInfo& alg = algorithms::algorithm(GetParam());
  const auto target = *test_util::least_target(alg.source);
  constexpr int kPackets = 600;

  std::vector<StageCounterRow> kernel_rows;
  for (ExecEngine engine :
       {ExecEngine::kClosure, ExecEngine::kKernel, ExecEngine::kNative}) {
    domino::CompileOptions opts;
    opts.engine = engine;
    auto compiled = domino::compile(alg.source, target, opts);
    Machine& m = compiled.machine();
    if (engine == ExecEngine::kNative && m.native() == nullptr)
      continue;  // no host toolchain: the ladder already degrades to kKernel
    const auto trace = corpus_trace(alg, m, kPackets, 11);
    m.prepare_stage_counters();
    for (const Packet& p : trace) m.process(p);

    const auto rows = m.stage_counters().rows();
    ASSERT_EQ(rows.size(), m.num_stages());
    for (std::size_t s = 0; s < rows.size(); ++s) {
      EXPECT_EQ(rows[s].packets, static_cast<std::uint64_t>(kPackets))
          << "engine " << static_cast<int>(engine) << " stage " << s;
      if (m.num_stages() > 0) EXPECT_GT(rows[s].ops, 0u);
    }
    if (engine == ExecEngine::kKernel) kernel_rows = rows;
    if (engine == ExecEngine::kNative && !kernel_rows.empty()) {
      for (std::size_t s = 0; s < rows.size(); ++s)
        EXPECT_EQ(rows[s].ops, kernel_rows[s].ops)
            << "native and kernel disagree on micro-ops at stage " << s;
    }
  }
}

// The threaded service's aggregated per-stage packet counters equal the
// sequential count exactly — worker parallelism, batching and the ordered
// egress must not lose or double-count a single stage traversal.
TEST_P(MetricsExactnessTest, ServiceCountersEqualSequentialExactly) {
  const AlgorithmInfo& alg = algorithms::algorithm(GetParam());
  const auto target = *test_util::least_target(alg.source);
  auto compiled = domino::compile(alg.source, target);
  const Machine& proto = compiled.machine();
  const FieldId flow_field = proto.fields().id_of(alg.input_fields[0]);
  const auto trace = corpus_trace(alg, proto, 1200, 23);

  ServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.num_slots = 8;
  cfg.batch_size = 32;
  cfg.ring_capacity = 256;
  cfg.backpressure = Backpressure::kBlock;
  cfg.flow_key = {flow_field};

  FleetService svc(proto, cfg);
  svc.start();
  ASSERT_EQ(svc.ingest_all(trace), trace.size());
  svc.flush();
  svc.stop();

  const ServiceStats st = svc.stats();
  ASSERT_EQ(st.stage_counters.size(), proto.num_stages());
  for (std::size_t s = 0; s < st.stage_counters.size(); ++s)
    EXPECT_EQ(st.stage_counters[s].packets, trace.size()) << "stage " << s;
  // Sum-over-stages invariant under lossless backpressure.
  EXPECT_EQ(st.stage_counters.empty() ? 0 : st.stage_counters[0].packets,
            st.ingested - st.dropped);
}

// Under DropTail the invariant is stage0 == ingested - dropped: exactly the
// accepted packets reach the pipeline, shed ones leave no counter trace.
TEST_P(MetricsExactnessTest, DropTailStageZeroEqualsIngestedMinusDropped) {
  const AlgorithmInfo& alg = algorithms::algorithm(GetParam());
  const auto target = *test_util::least_target(alg.source);
  auto compiled = domino::compile(alg.source, target);
  const Machine& proto = compiled.machine();
  const FieldId flow_field = proto.fields().id_of(alg.input_fields[0]);
  const auto trace = corpus_trace(alg, proto, 4000, 29);

  ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.num_slots = 4;
  cfg.batch_size = 8;
  cfg.ring_capacity = 16;  // tiny rings: force sheds
  cfg.backpressure = Backpressure::kDropTail;
  cfg.flow_key = {flow_field};

  FleetService svc(proto, cfg);
  svc.start();
  for (const Packet& p : trace) svc.ingest(p);
  svc.flush();
  svc.stop();

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.ingested, trace.size());
  EXPECT_EQ(st.delivered + st.dropped, st.ingested);
  ASSERT_FALSE(st.stage_counters.empty());
  for (std::size_t s = 0; s < st.stage_counters.size(); ++s)
    EXPECT_EQ(st.stage_counters[s].packets, st.ingested - st.dropped)
        << "stage " << s;
}

INSTANTIATE_TEST_SUITE_P(Corpus, MetricsExactnessTest,
                         ::testing::ValuesIn(mappable_corpus()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Prometheus rendering and the TCP endpoint.
// ---------------------------------------------------------------------------

TEST(MetricsRenderTest, ServicePageCarriesEveryFamily) {
  ServiceStats st;
  st.ingested = 100;
  st.delivered = 90;
  st.dropped = 10;
  st.packets_per_sec = 12345.5;
  st.latency_p50_ticks = 7;
  st.latency_p99_ticks = 63;
  st.queue_depth = {3, 0};
  st.wire.frames_parsed = 80;
  st.wire.frames_rejected = 5;
  st.wire.reject_truncated = 5;
  st.stage_counters = {{100, 400, 5000}, {100, 200, 2500}};

  std::ostringstream os;
  banzai::render_service_metrics(os, st);
  const std::string page = os.str();
  EXPECT_NE(page.find("domino_service_ingested_total 100\n"),
            std::string::npos);
  EXPECT_NE(page.find("domino_service_dropped_total 10\n"), std::string::npos);
  EXPECT_NE(page.find("domino_service_latency_ticks{quantile=\"0.99\"} 63"),
            std::string::npos);
  EXPECT_NE(page.find("domino_service_queue_depth{shard=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(page.find(
                "domino_wire_frames_rejected_total{reason=\"truncated\"} 5"),
            std::string::npos);
  EXPECT_NE(page.find("domino_stage_packets_total{stage=\"1\"} 100"),
            std::string::npos);
  EXPECT_NE(page.find("domino_stage_ops_total{stage=\"0\"} 400"),
            std::string::npos);
  // HELP/TYPE discipline: every family is typed.
  EXPECT_NE(page.find("# TYPE domino_service_ingested_total counter"),
            std::string::npos);
}

TEST(MetricsRenderTest, HeavyHittersAndQueuesAndCache) {
  std::ostringstream os;
  banzai::render_heavy_hitters(os, {{0xabcdULL, 42, 3}});
  EXPECT_NE(os.str().find(
                "domino_heavy_hitter_count{flow=\"000000000000abcd\"} 42"),
            std::string::npos);
  EXPECT_NE(os.str().find(
                "domino_heavy_hitter_error{flow=\"000000000000abcd\"} 3"),
            std::string::npos);

  netsim::QueueConfig qc;
  qc.bytes_per_tick = 100;
  qc.capacity_bytes = 500;
  netsim::ByteQueue q(qc);
  q.offer(0, 200);
  q.offer(0, 200);
  q.offer(0, 200);  // over capacity: dropped
  std::ostringstream qs;
  banzai::render_queue_metrics(qs, q, "port0");
  EXPECT_NE(qs.str().find("domino_queue_offered_pkts_total{queue=\"port0\"} 3"),
            std::string::npos);
  EXPECT_NE(qs.str().find("domino_queue_dropped_pkts_total{queue=\"port0\"} 1"),
            std::string::npos);

  banzai::NativeCacheStats cs;
  cs.dir = "/tmp/x";
  cs.objects = 2;
  cs.sources = 2;
  cs.total_bytes = 4096;
  std::ostringstream ns;
  banzai::render_native_cache_metrics(ns, cs);
  EXPECT_NE(ns.str().find("domino_native_cache_objects 2"), std::string::npos);
  EXPECT_NE(ns.str().find("domino_native_cache_bytes 4096"),
            std::string::npos);
}

std::string http_get(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)::send(fd, req, sizeof(req) - 1, 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(MetricsEndpointTest, ServesRegisteredSourcesOverTcp) {
  banzai::MetricsEndpoint endpoint;  // ephemeral port
  ServiceStats st;
  st.ingested = 7;
  endpoint.add_source(
      [st](std::ostream& os) { banzai::render_service_metrics(os, st); });
  ASSERT_EQ(endpoint.port(), 0u);
  endpoint.start();
  ASSERT_TRUE(endpoint.running());
  ASSERT_NE(endpoint.port(), 0u);

  // render() is exactly the page the listener serves.
  const std::string body = endpoint.render();
  EXPECT_NE(body.find("domino_service_ingested_total 7\n"), std::string::npos);

  for (int round = 0; round < 3; ++round) {
    const std::string resp = http_get(endpoint.port());
    ASSERT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    ASSERT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
    ASSERT_NE(resp.find(body), std::string::npos);
  }

  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
  // stop() is idempotent and the port refuses connections afterwards.
  endpoint.stop();
  EXPECT_EQ(http_get(endpoint.port()).find("200 OK"), std::string::npos);
}

// The hardening contract: clients that connect and vanish — some with an RST
// in flight — must cost the endpoint nothing.  The page is made big enough
// that the send loop has to survive partial writes AND a reset mid-response,
// and a well-behaved scrape afterwards still gets the whole body.
TEST(MetricsEndpointTest, SurvivesAbruptClientsAndKeepsServing) {
  banzai::MetricsEndpoint endpoint;
  const std::string filler(1 << 20, 'x');
  endpoint.add_source(
      [&](std::ostream& os) { os << "# filler\n" << filler << '\n'; });
  endpoint.start();

  for (int round = 0; round < 8; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(endpoint.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    if (round % 2 == 0) {
      // SO_LINGER(0): close() sends RST, so the server's in-flight send()
      // sees ECONNRESET instead of a graceful FIN.
      linger lg{};
      lg.l_onoff = 1;
      lg.l_linger = 0;
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    ::close(fd);  // never sends a request, never reads the response
  }

  const std::string resp = http_get(endpoint.port());
  ASSERT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find(filler), std::string::npos)
      << "a full scrape must still work after the abrupt clients";
  endpoint.stop();
}

}  // namespace
