#!/usr/bin/env bash
# Documentation checks, run by the CI docs job and usable locally:
#
#   1. Every intra-repo markdown link in README.md and docs/*.md resolves to
#      an existing file (anchors are stripped; external http(s)/mailto links
#      are skipped).
#   2. Every command quoted in docs/*.md runs: inside fenced code blocks,
#      lines starting with `./build/` are executed from the repository root
#      and must exit 0 — unless the line carries a `# rejected` marker, in
#      which case it must exit exactly 1, dominoc's "rejected by the
#      compiler" status (2 = usage error, 124 = timeout, 127 = missing
#      binary: all still failures, so a typo can't pass vacuously).
#
# Usage: scripts/check_docs.sh   (from the repository root, after a build)
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
fail=0

# ---- 1. intra-repo links ----------------------------------------------------
check_links() {
  local md="$1"
  local dir
  dir="$(dirname "$md")"
  # Extract (target) parts of [text](target) links, one per line.
  grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      echo x >> "$root/.docs_check_failed"
    fi
  done
}

rm -f .docs_check_failed
for md in README.md docs/*.md; do
  [ -e "$md" ] || continue
  check_links "$md"
done

# ---- 2. quoted commands -----------------------------------------------------
run_quoted() {
  local md="$1"
  local in_fence=0
  while IFS= read -r line; do
    case "$line" in
      '```'*) in_fence=$((1 - in_fence)); continue ;;
    esac
    [ "$in_fence" = 1 ] || continue
    case "$line" in
      './build/'*) ;;
      *) continue ;;
    esac
    local expect_fail=0
    case "$line" in
      *'# rejected'*) expect_fail=1 ;;
    esac
    local cmd="${line%%#*}"
    echo "RUN ($md): $cmd"
    local status=0
    eval "timeout 300 $cmd" > /dev/null 2>&1 || status=$?
    if [ "$expect_fail" = 1 ]; then
      if [ "$status" != 1 ]; then
        echo "EXPECTED COMPILE REJECTION (exit 1) but got exit $status: $cmd"
        echo x >> "$root/.docs_check_failed"
      fi
    elif [ "$status" != 0 ]; then
      echo "COMMAND FAILED (exit $status): $cmd (quoted in $md)"
      echo x >> "$root/.docs_check_failed"
    fi
  done < "$md"
}

for md in docs/*.md; do
  [ -e "$md" ] || continue
  run_quoted "$md"
done

if [ -e .docs_check_failed ]; then
  rm -f .docs_check_failed
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK: links resolve, quoted commands behave as documented"
