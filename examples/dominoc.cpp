// dominoc — command-line driver for the Domino compiler.
//
//   dominoc --list                             list corpus programs/targets
//   dominoc <program> [options]                compile a corpus program
//   dominoc <file.domino> [options]            compile a source file
//
// Options:
//   --target <name>     Banzai target (default: least expressive that fits)
//   --artifacts         dump every pass artifact (Figures 5-9 equivalents),
//                       including the lowered micro-op kernel disassembly
//   --emit-p4           print the generated P4-16 program
//   --emit-cc           print the native AOT C++ the kNative engine compiles
//                       and dlopens (core/emit.cc)
//   --dot               print dependency graph + condensed DAG (graphviz)
//   --run <n>           push n seeded workload packets through the machine
//                       (corpus programs only) and print a state summary
//
// Cache maintenance (the native AOT object cache, banzai/native.h):
//   dominoc --native-cache stats           show directory, entry count, bytes
//   dominoc --native-cache clear           remove every cached object/source
//   dominoc --native-cache sweep <bytes>   LRU-evict down to the byte cap
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>

#include "algorithms/corpus.h"
#include "banzai/native.h"
#include "banzai/sim.h"
#include "core/compiler.h"
#include "core/emit.h"
#include "core/pipeline.h"
#include "p4/p4gen.h"

namespace {

int usage() {
  std::printf(
      "usage: dominoc --list\n"
      "       dominoc --native-cache {stats|clear|sweep <bytes>}\n"
      "       dominoc <program|file.domino> [--target <name>] [--artifacts]\n"
      "               [--emit-p4] [--emit-cc] [--dot] [--run <n>]\n");
  return 2;
}

int native_cache_cmd(int argc, char** argv) {
  // dominoc --native-cache <verb>, argv[2] onward.  The directory is the
  // resolved default (DOMINO_NATIVE_CACHE or /tmp/domino-native-cache).
  if (argc < 3) return usage();
  const char* verb = argv[2];
  if (std::strcmp(verb, "stats") == 0) {
    const banzai::NativeCacheStats st = banzai::native_cache_stats();
    std::printf("native cache: %s\n", st.dir.c_str());
    std::printf("  objects: %zu\n  sources: %zu\n  bytes:   %llu\n",
                st.objects, st.sources,
                static_cast<unsigned long long>(st.total_bytes));
    return 0;
  }
  if (std::strcmp(verb, "clear") == 0) {
    const std::size_t removed = banzai::native_cache_clear();
    std::printf("removed %zu cached file(s)\n", removed);
    return 0;
  }
  if (std::strcmp(verb, "sweep") == 0) {
    if (argc < 4) return usage();
    char* end = nullptr;
    const unsigned long long cap = std::strtoull(argv[3], &end, 10);
    if (end == argv[3] || *end != '\0') return usage();
    const std::size_t removed = banzai::native_cache_sweep(cap);
    const banzai::NativeCacheStats st = banzai::native_cache_stats();
    std::printf("evicted %zu file(s); cache now %llu byte(s)\n", removed,
                static_cast<unsigned long long>(st.total_bytes));
    return 0;
  }
  return usage();
}

std::optional<std::string> load_source(const std::string& arg,
                                       const algorithms::AlgorithmInfo** alg) {
  *alg = nullptr;
  for (const auto& a : algorithms::corpus()) {
    if (a.name == arg) {
      *alg = &a;
      return a.source;
    }
  }
  // The scheduling corpus: PIFO rank programs (token_bucket, hsched; stfq
  // resolves above as a Table-4 row).
  for (const auto& a : algorithms::rank_corpus()) {
    if (a.name == arg) {
      *alg = &a;
      return a.source;
    }
  }
  std::ifstream in(arg);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  if (std::strcmp(argv[1], "--native-cache") == 0)
    return native_cache_cmd(argc, argv);

  if (std::strcmp(argv[1], "--list") == 0) {
    std::printf("corpus programs:\n");
    for (const auto& a : algorithms::corpus())
      std::printf("  %-18s %s (paper least atom: %s)\n", a.name.c_str(),
                  a.description.c_str(), a.paper_least_atom.c_str());
    std::printf("\nrank programs (PIFO schedulers, docs/SCHEDULING.md):\n");
    for (const auto& a : algorithms::rank_corpus())
      std::printf("  %-18s %s (rank field: %s)\n", a.name.c_str(),
                  a.description.c_str(), a.rank_field.c_str());
    std::printf("\ntargets:\n");
    for (const auto& t : atoms::paper_targets())
      std::printf("  %-18s stateful atom: %s\n", t.name.c_str(),
                  atoms::stateful_kind_name(t.stateful_atom));
    const auto lut = atoms::lut_extended_target();
    std::printf("  %-18s stateful atom: %s (+math unit, extension)\n",
                lut.name.c_str(),
                atoms::stateful_kind_name(lut.stateful_atom));
    return 0;
  }

  const algorithms::AlgorithmInfo* alg = nullptr;
  const auto source = load_source(argv[1], &alg);
  if (!source.has_value()) {
    std::fprintf(stderr, "error: '%s' is neither a corpus program nor a "
                         "readable file\n", argv[1]);
    return 2;
  }

  std::string target_name;
  bool artifacts = false, emit_p4 = false, emit_cc = false, dot = false;
  int run_packets = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--target") == 0 && i + 1 < argc)
      target_name = argv[++i];
    else if (std::strcmp(argv[i], "--artifacts") == 0)
      artifacts = true;
    else if (std::strcmp(argv[i], "--emit-p4") == 0)
      emit_p4 = true;
    else if (std::strcmp(argv[i], "--emit-cc") == 0)
      emit_cc = true;
    else if (std::strcmp(argv[i], "--dot") == 0)
      dot = true;
    else if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc)
      run_packets = std::atoi(argv[++i]);
    else
      return usage();
  }

  // Pick the target: named, or the least expressive one that accepts.
  std::optional<atoms::BanzaiTarget> target;
  std::optional<domino::CompileResult> compiled;
  if (!target_name.empty()) {
    target = atoms::find_target(target_name);
    if (!target.has_value()) {
      std::fprintf(stderr, "error: unknown target '%s'\n",
                   target_name.c_str());
      return 2;
    }
    try {
      compiled = domino::compile(*source, *target);
    } catch (const domino::CompileError& e) {
      std::fprintf(stderr, "rejected by %s: %s\n", target->name.c_str(),
                   e.what());
      return 1;
    }
  } else {
    for (const auto& t : atoms::paper_targets()) {
      try {
        compiled = domino::compile(*source, t);
        target = t;
        break;
      } catch (const domino::CompileError&) {
      }
    }
    if (!compiled.has_value()) {
      std::fprintf(stderr,
                   "rejected by every paper target (try --target "
                   "banzai-pairs-lut or inspect with --artifacts)\n");
      return 1;
    }
  }

  std::printf("%s: compiled for %s — %zu stages, max %zu atoms/stage, "
              "%.1f ms (%.1f ms synthesis)\n",
              compiled->program.transaction.name.c_str(),
              target->name.c_str(), compiled->num_stages(),
              compiled->max_atoms_per_stage(), compiled->seconds * 1e3,
              compiled->codegen.synth_seconds * 1e3);
  std::printf("\n%s", compiled->codegen.fitted.str().c_str());
  for (const auto& rep : compiled->codegen.reports)
    if (rep.stateful)
      std::printf("\nstage %d %s atom: %s", rep.stage, rep.atom.c_str(),
                  rep.config.c_str());
  std::printf("\n");

  if (artifacts) {
    std::printf("\n--- branch removal ---\n%s",
                compiled->normalized.branch_removed.str().c_str());
    std::printf("\n--- state flanks ---\n%s",
                compiled->normalized.flanked.str().c_str());
    std::printf("\n--- SSA ---\n%s", compiled->normalized.ssa.str().c_str());
    std::printf("\n--- three-address code ---\n%s",
                compiled->normalized.tac.str().c_str());
    if (compiled->machine().kernel() != nullptr)
      std::printf("\n--- micro-op kernel ---\n%s",
                  compiled->machine().kernel()->str().c_str());
  }
  if (emit_cc) {
    const auto* kernel = compiled->machine().kernel();
    if (kernel == nullptr) {
      std::fprintf(stderr,
                   "--emit-cc: this machine carries no lowered micro-op "
                   "program (closure-only)\n");
      return 1;
    }
    std::printf("\n%s", domino::emit_native_cc(*kernel).c_str());
  }
  if (dot) {
    std::printf("\n%s", domino::dep_graph_dot(compiled->normalized.tac).c_str());
    std::printf("\n%s",
                domino::condensed_dag_dot(compiled->normalized.tac).c_str());
  }
  if (emit_p4)
    std::printf("\n%s",
                p4gen::emit_p4(compiled->program, compiled->codegen.fitted)
                    .c_str());

  if (run_packets > 0) {
    if (alg == nullptr) {
      std::fprintf(stderr, "--run needs a corpus program (workload known)\n");
      return 2;
    }
    auto& machine = compiled->machine();
    banzai::PipelineSim sim(machine);
    std::mt19937 rng(1);
    for (int i = 0; i < run_packets; ++i) {
      std::map<std::string, banzai::Value> f;
      alg->workload(rng, i, f);
      banzai::Packet pkt(machine.fields().size());
      for (const auto& [k, v] : f)
        if (machine.fields().try_id_of(k).has_value())
          pkt.set(machine.fields().id_of(k), v);
      sim.enqueue(pkt);
    }
    sim.drain();
    std::printf("\nran %d packets in %llu cycles; state summary:\n",
                run_packets,
                static_cast<unsigned long long>(sim.stats().cycles));
    for (const auto& d : compiled->program.state_vars) {
      const auto& var = machine.state().var(d.name);
      long long sum = 0;
      banzai::Value mx = var.cells()[0];
      for (auto c : var.cells()) {
        sum += c;
        mx = std::max(mx, c);
      }
      std::printf("  %-18s cells=%zu sum=%lld max=%d\n", d.name.c_str(),
                  var.size(), sum, mx);
    }
  }
  return 0;
}
