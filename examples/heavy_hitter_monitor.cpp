// Heavy-hitter monitoring: the Count-Min-Sketch transaction from Table 4
// running in the switch data plane against a Zipfian traffic mix.
//
// The example compiles the transaction to the RAW target, replays a
// heavy-tailed flow trace through the pipelined machine, and evaluates the
// in-switch detector against exact per-flow counts computed offline:
// recall must be perfect (CMS never undercounts) and precision high.
#include <cstdio>
#include <map>
#include <set>

#include "algorithms/corpus.h"
#include "banzai/sim.h"
#include "bench/bench_util.h"
#include "core/compiler.h"
#include "sim/tracegen.h"

int main() {
  const auto& alg = algorithms::algorithm("heavy_hitters");
  domino::CompileResult compiled =
      domino::compile(alg.source, *atoms::find_target("banzai-raw"));
  std::printf("heavy_hitters compiled to %zu stages on banzai-raw\n",
              compiled.num_stages());

  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 60000;
  cfg.num_flows = 5000;
  cfg.zipf_skew = 1.2;
  cfg.seed = 20260609;
  const auto trace = netsim::generate_flow_trace(cfg);

  auto& machine = compiled.machine();
  const auto& fields = machine.fields();
  banzai::PipelineSim sim(machine);
  for (const auto& p : trace) {
    banzai::Packet pkt(fields.size());
    pkt.set(fields.id_of("srcip"), p.srcip);
    pkt.set(fields.id_of("dstip"), p.dstip);
    pkt.set(fields.id_of("sport"), p.sport);
    pkt.set(fields.id_of("dport"), p.dport);
    pkt.set(fields.id_of("proto"), p.proto);
    sim.enqueue(pkt);
  }
  sim.drain();

  // Ground truth: exact flow counts, threshold as in the transaction.
  constexpr int kThreshold = 100;
  std::map<std::int32_t, int> exact;
  for (const auto& p : trace) exact[p.flow_id]++;
  std::set<std::int32_t> true_heavy;
  for (const auto& [flow, n] : exact)
    if (n > kThreshold) true_heavy.insert(flow);

  // In-switch verdicts: a flow is flagged once its sketch estimate crosses
  // the threshold; collect flows flagged at any point.
  const auto heavy_id = fields.id_of(compiled.output_map().at("heavy"));
  const auto count_id = fields.id_of(compiled.output_map().at("count"));
  std::set<std::int32_t> flagged;
  std::map<std::int32_t, int> last_estimate;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (sim.egress()[i].get(heavy_id)) flagged.insert(trace[i].flow_id);
    last_estimate[trace[i].flow_id] = sim.egress()[i].get(count_id);
  }

  int true_pos = 0, false_pos = 0;
  for (auto f : flagged)
    (true_heavy.count(f) ? true_pos : false_pos)++;
  const int false_neg = static_cast<int>(true_heavy.size()) - true_pos;
  const double precision =
      flagged.empty() ? 1.0
                      : static_cast<double>(true_pos) /
                            static_cast<double>(flagged.size());
  const double recall =
      true_heavy.empty() ? 1.0
                         : static_cast<double>(true_pos) /
                               static_cast<double>(true_heavy.size());

  bench_util::header("In-switch Count-Min Sketch vs exact offline counts");
  std::printf("packets: %zu, flows: %zu, true heavy hitters (> %d pkts): %zu\n",
              trace.size(), exact.size(), kThreshold, true_heavy.size());
  std::printf("flagged in-switch: %zu  (TP=%d FP=%d FN=%d)\n", flagged.size(),
              true_pos, false_pos, false_neg);
  std::printf("precision=%.3f recall=%.3f\n", precision, recall);

  std::printf("\ntop flows (exact vs final sketch estimate):\n");
  std::vector<std::pair<int, std::int32_t>> by_count;
  for (const auto& [flow, n] : exact) by_count.emplace_back(n, flow);
  std::sort(by_count.rbegin(), by_count.rend());
  for (int i = 0; i < 5 && i < static_cast<int>(by_count.size()); ++i) {
    const auto [n, flow] = by_count[static_cast<std::size_t>(i)];
    std::printf("  flow %-6d exact=%-6d sketch>=%d\n", flow, n,
                last_estimate[flow]);
  }

  // CMS property: no false negatives (estimates only overcount).
  if (false_neg != 0) {
    std::printf("ERROR: count-min sketch produced a false negative!\n");
    return 1;
  }
  std::printf("\nno false negatives, as the Count-Min bound guarantees.\n");
  return 0;
}
