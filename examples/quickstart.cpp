// Quickstart: compile a Domino packet transaction to a Banzai machine and
// push packets through it.
//
// This is the README walkthrough: write the paper's flowlet-switching
// transaction (Figure 3a), compile it with one call, inspect the pipeline the
// compiler produced, and verify against the sequential reference interpreter.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "banzai/sim.h"
#include "core/compiler.h"
#include "core/interp.h"

static const char* kFlowletSource = R"(
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10

struct Packet {
  int sport;
  int dport;
  int new_hop;
  int arrival;
  int next_hop;
  int id;
};

int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};

void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
  pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
  if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
    saved_hop[pkt.id] = pkt.new_hop;
  }
  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
)";

int main() {
  // 1. Pick a compiler target: a Banzai machine whose stateful atom is PRAW
  //    (predicated read-add-write) — the least expressive atom that can run
  //    flowlet switching at line rate (Table 4).
  const atoms::BanzaiTarget target = *atoms::find_target("banzai-praw");

  // 2. Compile.  All-or-nothing: on success the program runs at line rate on
  //    this target; anything unmappable throws domino::CompileError.
  domino::CompileResult compiled = domino::compile(kFlowletSource, target);
  std::printf("compiled to %zu pipeline stages (max %zu atoms per stage)\n\n",
              compiled.num_stages(), compiled.max_atoms_per_stage());
  std::printf("%s\n", compiled.codegen.fitted.str().c_str());

  // 3. Drive the cycle-accurate machine: one packet enters per clock cycle,
  //    with up to six packets overlapped in the pipeline at any instant.
  banzai::Machine& machine = compiled.machine();
  banzai::PipelineSim sim(machine);
  const auto& fields = machine.fields();
  for (int i = 0; i < 16; ++i) {
    banzai::Packet pkt(fields.size());
    pkt.set(fields.id_of("sport"), 10000 + i % 3);  // three flows
    pkt.set(fields.id_of("dport"), 80);
    pkt.set(fields.id_of("arrival"), i * 2 + (i == 9 ? 40 : 0));  // one gap
    sim.enqueue(pkt);
  }
  sim.drain();

  // 4. Read results via the output map (user field -> machine field).
  const auto next_hop = fields.id_of(compiled.output_map().at("next_hop"));
  std::printf("packet -> next_hop:");
  for (const auto& pkt : sim.egress())
    std::printf(" %d", pkt.get(next_hop));
  std::printf("\n(%llu cycles for %zu packets: one per clock plus drain)\n",
              static_cast<unsigned long long>(sim.stats().cycles),
              sim.egress().size());

  // 5. Cross-check against the sequential reference semantics.
  domino::Interpreter interp(compiled.program);
  int mismatches = 0;
  for (int i = 0; i < 16; ++i) {
    banzai::Packet pkt = interp.make_packet();
    interp.set(pkt, "sport", 10000 + i % 3);
    interp.set(pkt, "dport", 80);
    interp.set(pkt, "arrival", i * 2 + (i == 9 ? 40 : 0));
    interp.run(pkt);
    if (interp.get(pkt, "next_hop") !=
        sim.egress()[static_cast<std::size_t>(i)].get(next_hop))
      ++mismatches;
  }
  std::printf("differential check vs sequential interpreter: %s\n",
              mismatches == 0 ? "identical" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
