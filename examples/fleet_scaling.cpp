// Scale one compiled packet transaction across a fleet of Banzai replicas.
//
// Compiles the paper's flowlet-switching example, stands up a 4-shard Fleet
// partitioned by flow hash, pushes a Zipf-skewed trace through it, and checks
// every shard against a single reference machine fed the same sub-trace.
//
//   $ ./build/examples/fleet_scaling
#include <cstdio>

#include "algorithms/corpus.h"
#include "banzai/fleet.h"
#include "core/compiler.h"
#include "sim/tracegen.h"

int main() {
  const auto& alg = algorithms::algorithm("flowlets");
  auto target = *atoms::find_target("banzai-praw");
  domino::CompileResult compiled = domino::compile(alg.source, target);
  const auto& ft = compiled.machine().fields();

  // A bursty, heavy-tailed trace: 64 flows, Zipfian popularity.
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 20000;
  cfg.num_flows = 64;
  cfg.zipf_skew = 1.3;
  cfg.seed = 17;
  std::vector<banzai::Packet> trace;
  for (const auto& tp : netsim::generate_flow_trace(cfg)) {
    banzai::Packet p(ft.size());
    p.set(ft.id_of("sport"), 1000 + tp.flow_id);
    p.set(ft.id_of("dport"), 80);
    p.set(ft.id_of("arrival"), static_cast<banzai::Value>(tp.arrival));
    trace.push_back(std::move(p));
  }

  banzai::FleetConfig fleet_cfg;
  fleet_cfg.num_shards = 4;
  fleet_cfg.batch_size = 256;
  fleet_cfg.flow_key = {ft.id_of("sport"), ft.id_of("dport")};
  banzai::Fleet fleet(compiled.machine(), fleet_cfg);

  banzai::FleetResult result = fleet.run(trace);
  std::printf("%zu packets over %zu shards:\n", trace.size(),
              fleet.num_shards());

  bool all_ok = true;
  for (std::size_t s = 0; s < fleet.num_shards(); ++s) {
    const auto& shard = result.shards[s];
    // Reference: a lone machine serving exactly this shard's packets.
    banzai::Machine reference = compiled.machine().clone();
    bool ok = true;
    for (std::size_t i = 0; i < shard.source_index.size(); ++i)
      if (!(shard.egress[i] == reference.process(trace[shard.source_index[i]])))
        ok = false;
    ok = ok && fleet.shard_machine(s).state() == reference.state();
    all_ok = all_ok && ok;
    std::printf(
        "  shard %zu: %6zu packets in %4llu batches — %s\n", s,
        shard.egress.size(),
        static_cast<unsigned long long>(shard.stats.batches),
        ok ? "matches single-machine reference" : "MISMATCH");
  }
  std::printf("%s\n", all_ok ? "fleet == single machine, per flow"
                             : "DIVERGENCE DETECTED");
  return all_ok ? 0 : 1;
}
