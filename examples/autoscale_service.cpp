// The closed control loop end to end: a load step makes the service reshard
// itself, and the egress stays bit-exact against a sequential reference.
//
// Compiles the paper's flowlet-switching example and runs it behind an
// AutoscalingService (banzai/autoscale.h) starting at 2 shards.  Phase one
// trickles packets in slowly — queues stay empty, the controller holds.
// Phase two blasts the rest of the trace as fast as ingest will take it; the
// shard rings fill, the sampled occupancy crosses the scale-up threshold for
// consecutive samples, and the service walks 2 → 4 (→ 8) shards on its own,
// migrating per-flow state via snapshot/restore mid-stream.  Every egress
// packet is compared against a per-slot sequential reference machine, so the
// run proves the reshard kept the bit-exact egress-order contract.
//
//   $ ./build/examples/autoscale_service
//   $ ./build/examples/autoscale_service --require-reshard   # CI: fail if
//                                         the loop never fired
//   $ ./build/examples/autoscale_service --serve 10 --port 9109
//       ...then: curl -s http://127.0.0.1:9109/metrics
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/autoscale.h"
#include "banzai/metrics.h"
#include "core/compiler.h"
#include "sim/partition.h"
#include "sim/tracegen.h"

namespace {

constexpr std::size_t kSlots = 16;

std::size_t slot_of(const banzai::Packet& p, banzai::FieldId sport,
                    banzai::FieldId dport) {
  std::uint64_t h = 0;
  for (banzai::FieldId f : {sport, dport})
    h = netsim::mix64(
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.get(f))));
  return static_cast<std::size_t>(h % kSlots);
}

std::vector<banzai::Packet> make_round(const banzai::FieldTable& ft,
                                       std::size_t packets, std::uint64_t seed,
                                       std::int64_t arrival_base) {
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = packets;
  cfg.num_flows = 64;
  cfg.zipf_skew = 1.2;
  cfg.seed = seed;
  std::vector<banzai::Packet> out;
  out.reserve(packets);
  for (const auto& tp : netsim::generate_flow_trace(cfg)) {
    banzai::Packet p(ft.size());
    p.set(ft.id_of("sport"), 1000 + tp.flow_id);
    p.set(ft.id_of("dport"), 80);
    p.set(ft.id_of("arrival"),
          static_cast<banzai::Value>(arrival_base + tp.arrival));
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_reshard = false;
  int serve_seconds = 0;
  std::uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-reshard") == 0)
      require_reshard = true;
    else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc)
      serve_seconds = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc)
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    else {
      std::fprintf(stderr,
                   "usage: autoscale_service [--require-reshard] "
                   "[--serve <seconds>] [--port <port>]\n");
      return 2;
    }
  }

  const auto& alg = algorithms::algorithm("flowlets");
  auto target = *atoms::find_target("banzai-praw");
  domino::CompileResult compiled = domino::compile(alg.source, target);
  const auto& ft = compiled.machine().fields();
  const auto f_sport = ft.id_of("sport");
  const auto f_dport = ft.id_of("dport");

  banzai::AutoscalingServiceConfig cfg;
  cfg.service.num_shards = 2;
  cfg.service.num_slots = kSlots;
  // Small batches and rings: the point is to make queue pressure visible,
  // not to win a throughput contest.
  cfg.service.batch_size = 4;
  cfg.service.ring_capacity = 128;
  cfg.service.backpressure = banzai::Backpressure::kBlock;  // lossless
  cfg.service.flow_key = {f_sport, f_dport};
  cfg.service.heavy_hitter_capacity = 32;
  cfg.autoscaler.min_shards = 2;
  cfg.autoscaler.max_shards = 8;
  cfg.autoscaler.queue_frac_high = 0.6;
  cfg.autoscaler.queue_frac_low = 0.05;
  cfg.autoscaler.sustain = 2;
  cfg.autoscaler.cooldown = std::chrono::milliseconds(10);
  cfg.sample_period = std::chrono::milliseconds(2);
  cfg.tick_stride = 64;

  banzai::AutoscalingService svc(compiled.machine(), cfg);

  // Sequential reference: one pristine machine per state slot, fed in the
  // same order packets are ingested.
  std::vector<banzai::Machine> reference;
  for (std::size_t v = 0; v < kSlots; ++v)
    reference.push_back(compiled.machine().clone());
  std::vector<banzai::Packet> expected;
  std::vector<banzai::Packet> egress;
  auto feed = [&](const std::vector<banzai::Packet>& round, bool slow) {
    for (std::size_t i = 0; i < round.size(); ++i) {
      expected.push_back(
          reference[slot_of(round[i], f_sport, f_dport)].process(round[i]));
      svc.ingest(round[i]);
      if (slow && (i & 31u) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  };

  svc.start();

  std::printf("phase 1: trickle (2 shards, queues idle)...\n");
  feed(make_round(ft, 4000, 17, 0), /*slow=*/true);
  std::printf("  shards after trickle: %zu (reshards: %llu)\n",
              svc.num_shards(),
              static_cast<unsigned long long>(svc.reshards()));

  std::printf("phase 2: 10x load step (blast ingest)...\n");
  // Keep blasting rounds until the control loop fires (bounded), so the
  // demo is robust to machine speed: a faster box just needs more offered
  // load before the rings back up.
  std::int64_t arrival_base = 1 << 20;
  const int max_rounds = require_reshard ? 40 : 4;
  for (int round = 0; round < max_rounds; ++round) {
    feed(make_round(ft, 40000, 18 + static_cast<std::uint64_t>(round),
                    arrival_base),
         /*slow=*/false);
    arrival_base += 1 << 20;
    for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));
    if (svc.reshards() > 0 && round >= 1) break;  // one round past the event
  }

  svc.flush();
  svc.stop();
  for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));

  const banzai::ServiceStats st = svc.stats();
  std::printf(
      "  shards now: %zu, reshards: %llu (ups %llu / downs %llu)\n"
      "  ingested %llu, delivered %llu, p50 latency %llu ticks, p99 %llu\n",
      svc.num_shards(), static_cast<unsigned long long>(svc.reshards()),
      static_cast<unsigned long long>(svc.autoscaler().scale_ups()),
      static_cast<unsigned long long>(svc.autoscaler().scale_downs()),
      static_cast<unsigned long long>(st.ingested),
      static_cast<unsigned long long>(st.delivered),
      static_cast<unsigned long long>(st.latency_p50_ticks),
      static_cast<unsigned long long>(st.latency_p99_ticks));
  if (!st.stage_counters.empty() && st.stage_counters[0].packets > 0) {
    std::printf("  per-stage counters (DOMINO_STAGE_COUNTERS):\n");
    for (std::size_t i = 0; i < st.stage_counters.size(); ++i)
      std::printf("    stage %zu: %llu pkts, %llu ops, %llu ns\n", i,
                  static_cast<unsigned long long>(st.stage_counters[i].packets),
                  static_cast<unsigned long long>(st.stage_counters[i].ops),
                  static_cast<unsigned long long>(st.stage_counters[i].ns));
  }
  const auto hitters = svc.heavy_hitters(5);
  if (!hitters.empty()) {
    std::printf("  top flows (space-saving, count-error):\n");
    for (const auto& h : hitters)
      std::printf("    flow %016llx: %llu (-%llu)\n",
                  static_cast<unsigned long long>(h.key),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.error));
  }

  bool ok = egress.size() == expected.size();
  for (std::size_t i = 0; ok && i < egress.size(); ++i)
    if (!(egress[i] == expected[i])) ok = false;
  std::printf("%s\n", ok ? "egress == sequential reference across every "
                           "autonomous reshard"
                         : "DIVERGENCE DETECTED");
  if (!ok) return 1;
  if (require_reshard && svc.reshards() == 0) {
    std::fprintf(stderr, "--require-reshard: the control loop never fired\n");
    return 1;
  }

  if (serve_seconds > 0) {
    banzai::MetricsEndpoint::Options mopts;
    mopts.port = port;
    banzai::MetricsEndpoint endpoint(mopts);
    endpoint.add_source(
        [&svc](std::ostream& os) { render_service_metrics(os, svc.stats()); });
    endpoint.add_source([&svc](std::ostream& os) {
      render_heavy_hitters(os, svc.heavy_hitters(10));
    });
    endpoint.add_source([](std::ostream& os) {
      render_native_cache_metrics(os, banzai::native_cache_stats());
    });
    endpoint.start();
    std::printf("serving metrics on http://127.0.0.1:%u/metrics for %ds\n",
                endpoint.port(), serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    endpoint.stop();
  }
  return 0;
}
