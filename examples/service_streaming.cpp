// Run one compiled packet transaction as an always-on streaming service.
//
// Compiles the paper's flowlet-switching example, starts a 2-shard
// FleetService (8 state slots), streams a Zipf-skewed trace into it in live
// chunks while reading ServiceStats, then performs the elastic-scaling move:
// drain, stop, snapshot, restore into a 4-shard service (per-flow state
// migrates with its slot), and keep streaming.  Every egress packet is
// checked against a sequential reference machine per slot.
//
//   $ ./build/examples/service_streaming
#include <cstdio>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/service.h"
#include "core/compiler.h"
#include "sim/partition.h"
#include "sim/tracegen.h"

namespace {

constexpr std::size_t kSlots = 8;

std::size_t slot_of(const banzai::Packet& p, banzai::FieldId sport,
                    banzai::FieldId dport) {
  std::uint64_t h = 0;
  for (banzai::FieldId f : {sport, dport})
    h = netsim::mix64(
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.get(f))));
  return static_cast<std::size_t>(h % kSlots);
}

void print_stats(const char* tag, const banzai::ServiceStats& st) {
  std::printf(
      "  [%s] ingested %llu, delivered %llu, dropped %llu, %.0f pkts/s, "
      "mean latency %.1f ticks, queue depths:",
      tag, static_cast<unsigned long long>(st.ingested),
      static_cast<unsigned long long>(st.delivered),
      static_cast<unsigned long long>(st.dropped), st.packets_per_sec,
      st.avg_latency_ticks);
  for (std::size_t d : st.queue_depth) std::printf(" %zu", d);
  std::printf("\n");
}

}  // namespace

int main() {
  const auto& alg = algorithms::algorithm("flowlets");
  auto target = *atoms::find_target("banzai-praw");
  domino::CompileResult compiled = domino::compile(alg.source, target);
  const auto& ft = compiled.machine().fields();
  const auto f_sport = ft.id_of("sport");
  const auto f_dport = ft.id_of("dport");

  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 40000;
  cfg.num_flows = 64;
  cfg.zipf_skew = 1.3;
  cfg.seed = 17;
  std::vector<banzai::Packet> trace;
  for (const auto& tp : netsim::generate_flow_trace(cfg)) {
    banzai::Packet p(ft.size());
    p.set(f_sport, 1000 + tp.flow_id);
    p.set(f_dport, 80);
    p.set(ft.id_of("arrival"), static_cast<banzai::Value>(tp.arrival));
    trace.push_back(std::move(p));
  }

  // Sequential reference: one pristine machine per state slot.
  std::vector<banzai::Machine> reference;
  for (std::size_t v = 0; v < kSlots; ++v)
    reference.push_back(compiled.machine().clone());
  std::vector<banzai::Packet> expected;
  expected.reserve(trace.size());
  for (const auto& p : trace)
    expected.push_back(reference[slot_of(p, f_sport, f_dport)].process(p));

  banzai::ServiceConfig svc_cfg;
  svc_cfg.num_shards = 2;
  svc_cfg.num_slots = kSlots;
  svc_cfg.batch_size = 256;
  svc_cfg.ring_capacity = 1024;
  svc_cfg.flow_key = {f_sport, f_dport};

  std::printf("streaming %zu packets through a %zu-shard FleetService...\n",
              trace.size(), svc_cfg.num_shards);
  banzai::FleetService svc(compiled.machine(), svc_cfg);
  svc.start();

  std::vector<banzai::Packet> egress;
  const std::size_t half = trace.size() / 2;
  const std::size_t chunk = trace.size() / 8;
  for (std::size_t i = 0; i < half; ++i) {
    svc.ingest(trace[i]);
    if ((i + 1) % chunk == 0) print_stats("live", svc.stats());
  }
  svc.flush();
  for (auto& p : svc.drain_egress()) egress.push_back(std::move(p));

  // Elastic scale-out: drain, snapshot, migrate whole slots to 4 shards.
  svc.stop();
  const banzai::ServiceSnapshot snap = svc.snapshot();
  svc_cfg.num_shards = 4;
  std::printf("resharding 2 -> 4 shards (%zu slots migrate wholesale)...\n",
              snap.slot_state.size());
  banzai::FleetService scaled(compiled.machine(), svc_cfg);
  scaled.restore(snap);
  scaled.start();

  for (std::size_t i = half; i < trace.size(); ++i) scaled.ingest(trace[i]);
  scaled.flush();
  for (auto& p : scaled.drain_egress()) egress.push_back(std::move(p));
  print_stats("after reshard", scaled.stats());
  scaled.stop();

  bool ok = egress.size() == expected.size();
  for (std::size_t i = 0; ok && i < egress.size(); ++i)
    if (!(egress[i] == expected[i])) ok = false;
  for (std::size_t v = 0; v < kSlots; ++v)
    if (!(scaled.slot_machine(v).state() == reference[v].state())) ok = false;

  std::printf("%s\n", ok ? "streamed service == sequential reference, "
                           "state migrated across reshard intact"
                         : "DIVERGENCE DETECTED");
  return ok ? 0 : 1;
}
