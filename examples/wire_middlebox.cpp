// A wire-format middlebox: real packet bytes in, real packet bytes out.
//
// Compiles the paper's flowlet-switching transaction, binds its wire spec
// (declared next to the Domino source in the corpus) into an rx/tx codec
// pair, and runs the full byte path three ways:
//
//   1. packed-struct interop — a hand-written #pragma pack(1) header with
//      htons/htonl (the conventional switch-datapath idiom) must produce
//      byte-identical frames to WireCodec::deparse;
//   2. pcap replay — a generated trace is written as a classic pcap
//      (DLT_USER0), read back, and streamed through a FleetService via
//      ingest_frame(); malformed records (truncated, bad magic, trailing
//      junk) are planted in the capture and must be rejected with the right
//      typed reason while every valid frame round-trips bit-exactly against
//      a sequential reference;
//   3. UDP loopback — the same frames pushed through a real socket pair and
//      ingested from recvfrom() buffers (skipped gracefully where sockets
//      are unavailable, e.g. a no-network sandbox).
//
//   $ ./build/examples/wire_middlebox
#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/service.h"
#include "core/compiler.h"
#include "sim/partition.h"
#include "sim/tracegen.h"
#include "wire/pcap.h"

namespace {

constexpr std::size_t kSlots = 8;

std::size_t slot_of(const banzai::Packet& p, banzai::FieldId sport,
                    banzai::FieldId dport) {
  std::uint64_t h = 0;
  for (banzai::FieldId f : {sport, dport})
    h = netsim::mix64(
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.get(f))));
  return static_cast<std::size_t>(h % kSlots);
}

// The conventional way to build this header in a switch datapath: a packed
// struct plus hton — the codec's shift-assembled stores must agree with it
// byte for byte.
#pragma pack(push, 1)
struct FlowletHdr {
  std::uint16_t magic;
  std::uint16_t sport;
  std::uint16_t dport;
  std::uint32_t arrival;
  std::uint8_t next_hop;
};
#pragma pack(pop)

}  // namespace

int main() {
  const auto& alg = algorithms::algorithm("flowlets");
  auto target = *atoms::find_target("banzai-praw");
  domino::CompileResult compiled = domino::compile(alg.source, target);
  const auto& ft = compiled.machine().fields();
  const auto f_sport = ft.id_of("sport");
  const auto f_dport = ft.id_of("dport");
  const auto f_arrival = ft.id_of("arrival");

  const wire::WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const wire::WireCodec>(spec, ft);
  auto tx = std::make_shared<const wire::WireCodec>(spec, ft,
                                                    compiled.output_map());
  std::printf("wire spec '%s': %zu fields, %zu-byte header\n",
              spec.name.c_str(), spec.fields.size(), spec.header_bytes);

  // ---- 1. packed-struct interop --------------------------------------------
  static_assert(sizeof(FlowletHdr) == 11, "spec and struct must agree");
  banzai::Packet probe(ft.size());
  probe.set(f_sport, 1234);
  probe.set(f_dport, 80);
  probe.set(f_arrival, 0x01020304);
  FlowletHdr hdr;
  hdr.magic = htons(0xD003);
  hdr.sport = htons(1234);
  hdr.dport = htons(80);
  hdr.arrival = htonl(0x01020304);
  hdr.next_hop = 0;
  const std::vector<std::uint8_t> emitted = rx->deparse(probe);
  bool interop_ok = emitted.size() == sizeof hdr &&
                    std::memcmp(emitted.data(), &hdr, sizeof hdr) == 0;
  std::printf("packed-struct interop: %s\n",
              interop_ok ? "byte-identical" : "MISMATCH");

  // ---- 2. pcap replay through the service ----------------------------------
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 20000;
  cfg.num_flows = 64;
  cfg.zipf_skew = 1.2;
  cfg.seed = 23;
  wire::PcapFile capture;
  std::vector<banzai::Packet> inputs;
  for (const auto& tp : netsim::generate_flow_trace(cfg)) {
    banzai::Packet p(ft.size());
    p.set(f_sport, 1000 + tp.flow_id);
    p.set(f_dport, 80);
    p.set(f_arrival, static_cast<banzai::Value>(tp.arrival));
    wire::PcapPacket rec;
    rec.ts_sec = static_cast<std::uint32_t>(tp.arrival);
    rec.bytes = rx->deparse(p);
    capture.packets.push_back(std::move(rec));
    inputs.push_back(std::move(p));
  }
  // Plant malformed records a real capture could contain: a runt, a frame
  // with the wrong magic, and one with trailing junk.
  wire::PcapPacket runt;
  runt.bytes = {0xD0, 0x03, 0xFF};
  capture.packets.push_back(runt);
  wire::PcapPacket badmagic;
  badmagic.bytes.assign(spec.header_bytes, 0);
  badmagic.bytes[0] = 0xBE;
  badmagic.bytes[1] = 0xEF;
  capture.packets.push_back(badmagic);
  wire::PcapPacket junk;
  junk.bytes = rx->deparse(inputs[0]);
  junk.bytes.push_back(0x55);  // one trailing byte: not exact framing
  capture.packets.push_back(junk);

  const std::string pcap_path =
      (std::filesystem::temp_directory_path() /
       ("wire-middlebox-" + std::to_string(static_cast<long>(::getpid())) +
        ".pcap"))
          .string();
  if (!wire::write_pcap_file(pcap_path, capture)) {
    std::printf("cannot write %s\n", pcap_path.c_str());
    return 1;
  }
  wire::PcapReadResult replay = wire::read_pcap_file(pcap_path);
  std::filesystem::remove(pcap_path);
  if (!replay.ok()) {
    std::printf("pcap read failed: %s\n", replay.error.c_str());
    return 1;
  }
  std::printf("pcap replay: %zu records (3 malformed planted)\n",
              replay.file.packets.size());

  // Sequential reference: parse -> per-slot machine -> deparse.
  std::vector<banzai::Machine> reference;
  for (std::size_t v = 0; v < kSlots; ++v)
    reference.push_back(compiled.machine().clone());
  std::vector<std::vector<std::uint8_t>> expected_frames;
  for (const auto& p : inputs) {
    const std::size_t slot = slot_of(p, f_sport, f_dport);
    expected_frames.push_back(tx->deparse(reference[slot].process(p)));
  }

  banzai::ServiceConfig svc_cfg;
  svc_cfg.num_shards = 2;
  svc_cfg.num_slots = kSlots;
  svc_cfg.batch_size = 256;
  svc_cfg.ring_capacity = 1024;
  svc_cfg.flow_key = {f_sport, f_dport};
  banzai::FleetService svc(compiled.machine(), svc_cfg);
  svc.set_wire(rx, tx);
  svc.start();
  for (const wire::PcapPacket& rec : replay.file.packets) {
    const auto in = svc.ingest_frame(rec.bytes.data(), rec.bytes.size());
    if (!in.parse.ok())
      std::printf("  rejected %zu-byte record: %s%s%.*s\n", rec.bytes.size(),
                  wire::to_string(in.parse.status),
                  in.parse.field.empty() ? "" : " at field ",
                  static_cast<int>(in.parse.field.size()),
                  in.parse.field.data());
  }
  svc.flush();
  const auto frames = svc.drain_egress_frames();
  const auto st = svc.stats();
  svc.stop();

  bool replay_ok = frames.size() == expected_frames.size();
  for (std::size_t i = 0; replay_ok && i < frames.size(); ++i)
    if (frames[i] != expected_frames[i]) replay_ok = false;
  const bool accounting_ok =
      st.wire.frames_parsed == inputs.size() &&
      st.wire.frames_rejected == 3 && st.wire.reject_truncated == 1 &&
      st.wire.reject_bad_value == 1 && st.wire.reject_oversized == 1;
  std::printf(
      "service: parsed %llu, rejected %llu (truncated %llu / oversized %llu "
      "/ bad value %llu), %llu bytes in, %llu bytes out\n",
      static_cast<unsigned long long>(st.wire.frames_parsed),
      static_cast<unsigned long long>(st.wire.frames_rejected),
      static_cast<unsigned long long>(st.wire.reject_truncated),
      static_cast<unsigned long long>(st.wire.reject_oversized),
      static_cast<unsigned long long>(st.wire.reject_bad_value),
      static_cast<unsigned long long>(st.wire.bytes_in),
      static_cast<unsigned long long>(st.wire.bytes_out));
  std::printf("egress frames == sequential reference: %s\n",
              replay_ok ? "yes" : "NO — DIVERGENCE");

  // ---- 3. UDP loopback ingest ----------------------------------------------
  bool udp_ok = true;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t addr_len = sizeof addr;
  if (fd < 0 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    std::printf("udp loopback: unavailable here, skipping\n");
    if (fd >= 0) ::close(fd);
  } else {
    banzai::FleetService udp_svc(compiled.machine(), svc_cfg);
    udp_svc.set_wire(rx, tx);
    udp_svc.start();
    constexpr std::size_t kUdpFrames = 200;
    std::size_t received = 0;
    std::uint8_t buf[64];
    for (std::size_t i = 0; i < kUdpFrames; ++i) {
      const std::vector<std::uint8_t> frame = rx->deparse(inputs[i]);
      if (::sendto(fd, frame.data(), frame.size(), 0,
                   reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr) < 0) {
        udp_ok = false;
        break;
      }
      const ssize_t n = ::recvfrom(fd, buf, sizeof buf, 0, nullptr, nullptr);
      if (n < 0 || !udp_svc.ingest_frame(buf, static_cast<std::size_t>(n))
                        .parse.ok()) {
        udp_ok = false;
        break;
      }
      ++received;
    }
    udp_svc.flush();
    const std::size_t out = udp_svc.drain_egress_frames().size();
    udp_svc.stop();
    ::close(fd);
    udp_ok = udp_ok && out == received && received == kUdpFrames;
    std::printf("udp loopback: %zu frames sent, parsed and processed: %s\n",
                received, udp_ok ? "ok" : "FAILED");
  }

  const bool ok = interop_ok && replay_ok && accounting_ok && udp_ok;
  std::printf("%s\n", ok ? "wire middlebox: all paths agree"
                         : "wire middlebox: FAILURE");
  return ok ? 0 : 1;
}
