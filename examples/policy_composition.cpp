// Guards and policies (§3.3-3.4): running multiple transactions on one
// switch, each triggered by a match on packet fields, with overlapping
// guards composed by concatenating transaction bodies.
//
// The policy here:
//   guard (dport == 53)            -> DNS TTL change tracking
//   guard (dport in [1, 1023])     -> sampled NetFlow
// A DNS packet (dport 53) matches both guards, so it executes the fused
// dns-then-netflow transaction; other well-known-port traffic only runs
// NetFlow.  The fused transaction is itself compilable to a Banzai target.
#include <cstdio>

#include "algorithms/corpus.h"
#include "bench/bench_util.h"
#include "core/compiler.h"
#include "core/interp.h"
#include "core/policy.h"
#include "core/sema.h"
#include "sim/rng.h"

int main() {
  using namespace domino;

  Program dns = parse_and_check(algorithms::algorithm("dns_ttl_tracker").source);
  Program netflow =
      parse_and_check(algorithms::algorithm("sampled_netflow").source);

  Policy policy;
  policy.add(Guard::exact("dport", 53), dns.clone());
  policy.add(Guard::range("dport", 1, 1023), netflow.clone());

  // The composed transaction for packets matching both guards.
  Program fused = compose_transactions(dns, netflow);
  analyze(fused);
  bench_util::header("Fused transaction (dns_ttl_tracker ; sampled_netflow)");
  std::printf("fused body: %zu statements, state variables: %zu\n",
              fused.transaction.body.size(), fused.state_vars.size());

  auto compiled = compile(fused.str(), *atoms::find_target("banzai-nested"));
  std::printf(
      "fused transaction compiles to banzai-nested: %zu stages, max %zu "
      "atoms/stage\n",
      compiled.num_stages(), compiled.max_atoms_per_stage());

  // Dispatch a mixed workload through the policy using interpreters (the
  // paper compiles single transactions; composition semantics are §3.4's).
  Interpreter dns_interp(dns);
  Interpreter netflow_interp(netflow);
  Interpreter fused_interp(fused);

  banzai::FieldTable guard_fields;
  guard_fields.intern("dport");

  netsim::Xoshiro256 rng(2026);
  int dns_pkts = 0, other_pkts = 0, unmatched = 0, fused_runs = 0;
  int netflow_samples = 0;
  for (int i = 0; i < 3000; ++i) {
    const bool is_dns = rng.below(10) < 3;
    const int dport =
        is_dns ? 53 : static_cast<int>(rng.below(2000));  // some unmatched
    banzai::Packet probe(1);
    probe.set(0, dport);
    const auto matches = policy.matching_entries(probe, guard_fields);

    if (matches.empty()) {
      ++unmatched;
      continue;
    }
    if (matches.size() == 2) {
      // Both guards: run the fused transaction (dns, then netflow).
      ++fused_runs;
      auto pkt = fused_interp.make_packet();
      fused_interp.set(pkt, "domain", static_cast<int>(rng.below(50)));
      fused_interp.set(pkt, "ttl", 300);
      fused_interp.run(pkt);
      ++dns_pkts;
      netflow_samples += fused_interp.get(pkt, "sample");
    } else if (policy.entries()[matches[0]].transaction.transaction.name ==
               "sampled_netflow") {
      auto pkt = netflow_interp.make_packet();
      netflow_interp.run(pkt);
      ++other_pkts;
      netflow_samples += netflow_interp.get(pkt, "sample");
    }
  }

  bench_util::header("Policy dispatch over 3000 packets");
  std::printf("DNS packets (both guards, fused transaction): %d\n", dns_pkts);
  std::printf("other well-known-port packets (NetFlow only):  %d\n",
              other_pkts);
  std::printf("unmatched packets (no transaction):            %d\n",
              unmatched);
  std::printf("NetFlow samples taken:                         %d\n",
              netflow_samples);

  const bool ok = fused_runs > 0 && other_pkts > 0 && unmatched > 0 &&
                  netflow_samples > 0;
  std::printf("\nall three dispatch outcomes exercised: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
