// Scheduling fairness on a leaf-spine fabric: drop-tail FIFO vs STFQ-on-PIFO.
//
//   $ ./build/examples/pifo_fairness [seed]
//
// Eight Zipf-skewed tenants incast into leaf 0 of an 8x8 fabric at ~6x the
// bottleneck host port's drain rate, so every tenant is backlogged and the
// bottleneck discipline alone decides who gets through.  A FIFO shares the
// port in proportion to offered load — the heaviest tenant takes roughly the
// Zipf skew's worth more than the lightest.  Swapping the same port for a
// PifoQueue whose rank is the compiled STFQ transaction (start-time fair
// queueing, algorithms::rank_corpus()) pins every tenant near an equal
// share.  The program self-checks: it exits nonzero unless PIFO's max/min
// per-tenant delivered-bytes ratio is strictly tighter than FIFO's.
#include <cstdio>
#include <cstdlib>

#include "sim/sched.h"

namespace {

void print_report(const char* label, const netsim::FairnessReport& r) {
  std::printf("%-14s", label);
  for (std::size_t t = 0; t < r.delivered_bytes.size(); ++t)
    std::printf(" %8lld", static_cast<long long>(r.delivered_bytes[t]));
  std::printf("   ratio %.2f\n", r.max_min_ratio);
}

}  // namespace

int main(int argc, char** argv) {
  netsim::FairnessConfig config;
  if (argc > 1) config.seed = static_cast<std::uint64_t>(std::atoll(argv[1]));

  netsim::FairnessConfig fifo_cfg = config;
  fifo_cfg.use_pifo = false;
  const netsim::FairnessReport fifo = netsim::run_fairness_scenario(fifo_cfg);

  netsim::FairnessConfig pifo_cfg = config;
  pifo_cfg.use_pifo = true;
  const netsim::FairnessReport pifo = netsim::run_fairness_scenario(pifo_cfg);

  std::printf("tenants=%d packets=%d seed=%llu (bytes delivered per tenant)\n",
              config.tenants, config.packets,
              static_cast<unsigned long long>(config.seed));
  std::printf("%-14s", "offered");
  for (std::size_t t = 0; t < fifo.offered_bytes.size(); ++t)
    std::printf(" %8lld", static_cast<long long>(fifo.offered_bytes[t]));
  std::printf("\n");
  print_report("fifo", fifo);
  print_report("stfq-on-pifo", pifo);

  if (!(pifo.max_min_ratio < fifo.max_min_ratio)) {
    std::fprintf(stderr,
                 "FAIL: PIFO max/min ratio %.2f is not tighter than FIFO's "
                 "%.2f\n",
                 pifo.max_min_ratio, fifo.max_min_ratio);
    return 1;
  }
  std::printf("OK: STFQ-on-PIFO tightened max/min from %.2f to %.2f\n",
              fifo.max_min_ratio, pifo.max_min_ratio);
  return 0;
}
