// The distributed fleet end to end, with REAL processes and a REAL kill:
// forks four worker processes (each its own address space running a
// WorkerServer), hashes a flowlet workload across them from a front tier,
// checkpoints under load, SIGKILLs one worker mid-burst, and proves the
// cluster's egress is still byte-identical to ONE sequential per-slot
// reference machine — the killed worker's slots restored onto survivors
// from the last checkpoint and replayed from the resend buffer.
//
//   $ ./build/examples/dist_cluster
//   $ ./build/examples/dist_cluster --require-recovery   # CI: also fail if
//       the kill never forced a migration (the chaos path must have fired)
//
// The workers are forked before any thread exists in this process, then the
// parent builds the (threadless, caller-driven) front tier — so the fork is
// safe, and SIGKILL tests true process death: no destructors, no flush, all
// state gone.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "core/compiler.h"
#include "dist/front.h"
#include "dist/worker.h"
#include "sim/partition.h"
#include "wire/codec.h"

namespace {

constexpr std::size_t kSlots = 16;
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kFrames = 6000;

struct WorkerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

// Forks a child that runs a WorkerServer until killed; the child reports its
// (ephemeral) port back through a pipe.
WorkerProc spawn_worker(const banzai::Machine& machine,
                        const std::shared_ptr<const wire::WireCodec>& rx,
                        const std::shared_ptr<const wire::WireCodec>& tx) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(fds[0]);
    dist::WorkerConfig cfg;
    cfg.algorithm = "flowlets";
    cfg.num_slots = kSlots;
    cfg.num_shards = 2;
    cfg.flow_key = {"sport", "dport"};
    dist::WorkerServer worker(machine, rx, tx, cfg);
    worker.start();
    const std::uint16_t port = worker.port();
    if (::write(fds[1], &port, sizeof(port)) != sizeof(port)) std::_Exit(1);
    ::close(fds[1]);
    // Serve until the parent kills us.  The serve thread does the work; this
    // thread just sleeps — pause() returns only on a (fatal) signal.
    for (;;) ::pause();
  }
  ::close(fds[1]);
  WorkerProc wp;
  wp.pid = pid;
  if (::read(fds[0], &wp.port, sizeof(wp.port)) != sizeof(wp.port)) {
    std::fprintf(stderr, "worker %d never reported a port\n", pid);
    std::exit(1);
  }
  ::close(fds[0]);
  return wp;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_recovery = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-recovery") == 0) {
      require_recovery = true;
    } else {
      std::fprintf(stderr, "usage: %s [--require-recovery]\n", argv[0]);
      return 2;
    }
  }

  const auto& alg = algorithms::algorithm("flowlets");
  const auto compiled =
      domino::compile(alg.source, *atoms::find_target("banzai-praw"));
  const auto& ft = compiled.machine().fields();
  const wire::WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const wire::WireCodec>(spec, ft);
  auto tx = std::make_shared<const wire::WireCodec>(spec, ft,
                                                    compiled.output_map());
  const std::vector<banzai::FieldId> flow_key = {ft.id_of("sport"),
                                                 ft.id_of("dport")};

  // Fork all workers BEFORE any thread exists in this process.
  std::vector<WorkerProc> procs;
  for (std::size_t w = 0; w < kWorkers; ++w)
    procs.push_back(spawn_worker(compiled.machine(), rx, tx));
  std::printf("forked %zu workers:", procs.size());
  for (const auto& p : procs) std::printf(" pid=%d port=%u", p.pid, p.port);
  std::printf("\n");

  // Workload + the sequential reference.
  std::mt19937 rng(4242);
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t i = 0; i < kFrames; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, static_cast<int>(i), f);
    banzai::Packet p(ft.size());
    for (const auto& [k, v] : f)
      if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
    frames.push_back(rx->deparse(p));
  }
  std::vector<banzai::Machine> reference;
  for (std::size_t v = 0; v < kSlots; ++v)
    reference.push_back(compiled.machine().clone());
  banzai::Packet scratch(ft.size());
  std::vector<std::vector<std::uint8_t>> expected;
  for (const auto& f : frames) {
    if (!rx->parse_exact(f.data(), f.size(), scratch).ok()) continue;
    std::uint64_t h = 0;
    for (banzai::FieldId fk : flow_key)
      h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(scratch.get(fk))));
    expected.push_back(tx->deparse(reference[h % kSlots].process(scratch)));
  }

  dist::FrontConfig fc;
  fc.algorithm = "flowlets";
  fc.num_slots = kSlots;
  fc.flow_key = flow_key;
  fc.rpc_timeout = dist::Millis(300);
  fc.dead_after = 2;
  fc.max_batch = 32;
  dist::FrontTier front(rx, fc);
  for (const auto& p : procs) front.add_worker(p.port);
  front.connect();

  const std::size_t kill_at = kFrames / 2;
  const std::size_t victim = 2;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == kFrames / 4) front.checkpoint();
    if (i == kill_at) {
      std::printf("SIGKILL worker %zu (pid %d) at frame %zu\n", victim,
                  procs[victim].pid, i);
      ::kill(procs[victim].pid, SIGKILL);
      int status = 0;
      ::waitpid(procs[victim].pid, &status, 0);
    }
    front.offer(frames[i]);
  }
  front.flush();
  const auto egress = front.drain_egress();

  int rc = 0;
  if (egress.size() != expected.size()) {
    std::fprintf(stderr, "FAIL: egress count %zu != expected %zu\n",
                 egress.size(), expected.size());
    rc = 1;
  } else {
    for (std::size_t i = 0; i < egress.size(); ++i) {
      if (egress[i] != expected[i]) {
        std::fprintf(stderr, "FAIL: egress frame %zu differs\n", i);
        rc = 1;
        break;
      }
    }
  }

  const dist::FrontStats st = front.stats();
  std::printf(
      "offered=%llu egress=%llu retries=%llu migrations=%llu slot_moves=%llu "
      "replays=%llu checkpoints=%llu dup_acks=%llu egress_dups=%llu\n",
      static_cast<unsigned long long>(st.frames_offered),
      static_cast<unsigned long long>(st.egress_frames),
      static_cast<unsigned long long>(st.retries),
      static_cast<unsigned long long>(st.migrations),
      static_cast<unsigned long long>(st.slot_moves),
      static_cast<unsigned long long>(st.replays),
      static_cast<unsigned long long>(st.checkpoints),
      static_cast<unsigned long long>(st.dup_acks),
      static_cast<unsigned long long>(st.egress_duplicates));
  for (std::size_t w = 0; w < front.num_workers(); ++w) {
    const dist::WorkerView v = front.worker_view(w);
    std::printf("worker %zu: health=%s slots=%zu timeouts=%llu errors=%llu "
                "deaths=%llu\n",
                w, dist::to_string(v.health), v.slots_owned,
                static_cast<unsigned long long>(v.timeouts),
                static_cast<unsigned long long>(v.errors),
                static_cast<unsigned long long>(v.deaths));
  }

  if (require_recovery) {
    if (st.migrations == 0 || st.replays == 0) {
      std::fprintf(stderr,
                   "FAIL: --require-recovery but the kill forced no "
                   "migration/replay (migrations=%llu replays=%llu)\n",
                   static_cast<unsigned long long>(st.migrations),
                   static_cast<unsigned long long>(st.replays));
      rc = 1;
    }
    if (front.worker_view(victim).deaths == 0) {
      std::fprintf(stderr, "FAIL: victim was never declared dead\n");
      rc = 1;
    }
  }

  // Tear down the survivors.
  for (std::size_t w = 0; w < procs.size(); ++w) {
    if (w == victim) continue;
    ::kill(procs[w].pid, SIGKILL);
    int status = 0;
    ::waitpid(procs[w].pid, &status, 0);
  }

  std::printf(rc == 0 ? "cluster egress bit-exact vs sequential reference "
                        "across a worker SIGKILL\n"
                      : "cluster FAILED\n");
  return rc;
}
