// One worker process of the distributed fleet: compiles a corpus algorithm,
// binds a TCP port, and serves the front tier's RPC protocol (dist/framing.h)
// until killed — byte-frame ingest with per-slot sequence dedup, slot
// snapshot/restore (the live-migration payload), engine hot-swap, heartbeats.
//
//   $ ./build/examples/dist_worker --port 9301
//       serves until SIGKILL/SIGTERM; a front tier (examples/dist_cluster,
//       or your own dist::FrontTier) connects and drives it
//   $ ./build/examples/dist_worker --smoke
//       self-check mode for CI/docs: starts on an ephemeral port, speaks the
//       protocol to itself over loopback (HELLO + one ingest batch + snapshot),
//       and exits 0 on success
//
// Options: --port N (default 0 = ephemeral, printed), --algorithm NAME
// (default flowlets), --slots N (default 16, must match the fleet),
// --shards N (default 2).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "core/compiler.h"
#include "dist/framing.h"
#include "dist/rpc.h"
#include "dist/worker.h"
#include "wire/codec.h"

namespace {

int smoke(dist::WorkerServer& worker,
          const std::shared_ptr<const wire::WireCodec>& rx,
          const banzai::Machine& machine, std::size_t num_slots) {
  using dist::MsgType;
  const auto deadline = dist::Clock::now() + dist::Millis(5000);
  dist::Conn conn = dist::connect_local(worker.port(), dist::Millis(5000));

  dist::Hello hello;
  hello.algorithm = "flowlets";
  hello.num_slots = static_cast<std::uint32_t>(num_slots);
  hello.header_bytes = static_cast<std::uint32_t>(rx->header_bytes());
  conn.send_msg(MsgType::kHello, dist::encode_hello(hello), deadline);
  if (conn.recv_msg(deadline).type != MsgType::kHelloAck) {
    std::fprintf(stderr, "smoke: HELLO not acknowledged\n");
    return 1;
  }

  // One small batch: a frame deparsed from an all-defaults packet.
  banzai::Packet p(machine.fields().size());
  dist::IngestBatch batch;
  dist::FrameRecord rec;
  rec.seq = 1;
  rec.slot = 0;
  rec.bytes = rx->deparse(p);
  batch.frames.push_back(std::move(rec));
  conn.send_msg(MsgType::kIngestBatch, dist::encode_ingest_batch(batch),
                deadline);
  const dist::Message ack = conn.recv_msg(deadline);
  if (ack.type != MsgType::kIngestAck) {
    std::fprintf(stderr, "smoke: ingest not acknowledged\n");
    return 1;
  }
  const auto decoded =
      dist::decode_ingest_ack(ack.payload.data(), ack.payload.size());
  if (decoded.statuses.size() != 1 ||
      decoded.statuses[0] != dist::FrameStatus::kAccepted) {
    std::fprintf(stderr, "smoke: frame not accepted\n");
    return 1;
  }

  dist::SnapshotReq req;  // empty slot list = all slots
  conn.send_msg(MsgType::kSnapshotReq, dist::encode_snapshot_req(req),
                deadline);
  const dist::Message snap = conn.recv_msg(deadline);
  if (snap.type != MsgType::kSnapshotResp) {
    std::fprintf(stderr, "smoke: snapshot refused\n");
    return 1;
  }
  const auto resp =
      dist::decode_snapshot_resp(snap.payload.data(), snap.payload.size());
  if (resp.slots.size() != num_slots) {
    std::fprintf(stderr, "smoke: snapshot returned %zu slots, want %zu\n",
                 resp.slots.size(), num_slots);
    return 1;
  }
  std::printf("smoke OK: HELLO + ingest + %zu-slot snapshot on port %u\n",
              num_slots, worker.port());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string algorithm = "flowlets";
  std::size_t num_slots = 16;
  std::size_t num_shards = 2;
  bool smoke_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_mode = true;
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--algorithm" && i + 1 < argc) {
      algorithm = argv[++i];
    } else if (arg == "--slots" && i + 1 < argc) {
      num_slots = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--shards" && i + 1 < argc) {
      num_shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--algorithm NAME] [--slots N] "
                   "[--shards N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto& alg = algorithms::algorithm(algorithm);
  const auto compiled =
      domino::compile(alg.source, *atoms::find_target("banzai-praw"));
  const auto& ft = compiled.machine().fields();
  const wire::WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const wire::WireCodec>(spec, ft);
  auto tx = std::make_shared<const wire::WireCodec>(spec, ft,
                                                    compiled.output_map());

  dist::WorkerConfig cfg;
  cfg.port = port;
  cfg.algorithm = algorithm;
  cfg.num_slots = num_slots;
  cfg.num_shards = num_shards;
  cfg.flow_key = {"sport", "dport"};
  dist::WorkerServer worker(compiled.machine(), rx, tx, cfg);

  if (smoke_mode) {
    worker.start();
    const int rc = smoke(worker, rx, compiled.machine(), num_slots);
    worker.stop();
    return rc;
  }

  worker.start();
  std::printf("dist_worker: algorithm=%s slots=%zu shards=%zu port=%u\n",
              algorithm.c_str(), num_slots, num_shards, worker.port());
  std::fflush(stdout);
  worker.stop();  // hand the listener back so serve_forever owns the thread
  worker.serve_forever();
  return 0;
}
