// Active queue management in the data plane: HULL's phantom queue (Table 4)
// and CoDel on the LUT-extended target (§5.3's future-work direction), both
// compiled from Domino and driven by the same queue traces.
//
// Demonstrates the intro's motivating scenario: AQM algorithms that today
// require new silicon, expressed in ~25 lines of Domino each and swapped on
// the same programmable switch.
#include <cstdio>

#include "algorithms/corpus.h"
#include "banzai/sim.h"
#include "bench/bench_util.h"
#include "core/compiler.h"
#include "sim/queue.h"
#include "sim/tracegen.h"

namespace {

struct MarkStats {
  long packets = 0;
  long marks = 0;
  double fraction() const {
    return packets ? static_cast<double>(marks) / packets : 0;
  }
};

MarkStats run_hull(const std::vector<netsim::QueueSample>& samples) {
  auto compiled = domino::compile(algorithms::algorithm("hull").source,
                                  *atoms::find_target("banzai-sub"));
  auto& m = compiled.machine();
  banzai::PipelineSim sim(m);
  for (const auto& s : samples) {
    banzai::Packet p(m.fields().size());
    p.set(m.fields().id_of("now"), s.arrival);
    p.set(m.fields().id_of("size_bytes"), s.size_bytes);
    sim.enqueue(p);
  }
  sim.drain();
  MarkStats st;
  const auto mark = m.fields().id_of(compiled.output_map().at("mark"));
  for (const auto& p : sim.egress()) {
    ++st.packets;
    st.marks += p.get(mark);
  }
  return st;
}

MarkStats run_codel(const std::vector<netsim::QueueSample>& samples) {
  auto compiled = domino::compile(algorithms::algorithm("codel").source,
                                  atoms::lut_extended_target());
  auto& m = compiled.machine();
  banzai::PipelineSim sim(m);
  for (const auto& s : samples) {
    banzai::Packet p(m.fields().size());
    p.set(m.fields().id_of("now"), s.arrival);
    p.set(m.fields().id_of("qdelay"), s.sojourn);
    sim.enqueue(p);
  }
  sim.drain();
  MarkStats st;
  const auto mark = m.fields().id_of(compiled.output_map().at("mark"));
  for (const auto& p : sim.egress()) {
    ++st.packets;
    st.marks += p.get(mark);
  }
  return st;
}

}  // namespace

int main() {
  bench_util::header(
      "AQM in the data plane: HULL (banzai-sub) and CoDel (banzai-pairs-lut)");

  const std::vector<int> widths = {8, 12, 14, 14, 14};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"load", "mean delay", "HULL mark %",
                                 "CoDel mark %", "packets"});
  bench_util::print_rule(widths);

  double hull_light = -1, hull_heavy = -1;
  double codel_light = -1, codel_heavy = -1;
  for (double load : {0.4, 0.8, 1.2, 2.0}) {
    netsim::ArrivalTraceConfig tc;
    tc.num_packets = 30000;
    tc.load = load;
    tc.seed = 31337;
    netsim::QueueConfig qc;
    qc.bytes_per_tick = 1000;
    const auto samples =
        netsim::simulate_queue(netsim::generate_arrival_trace(tc), qc);
    double mean_delay = 0;
    for (const auto& s : samples) mean_delay += s.sojourn;
    mean_delay /= static_cast<double>(samples.size());

    const MarkStats hull = run_hull(samples);
    const MarkStats codel = run_codel(samples);
    bench_util::print_row(
        widths, {bench_util::fmt(load, 1), bench_util::fmt(mean_delay, 1),
                 bench_util::fmt(100 * hull.fraction(), 2),
                 bench_util::fmt(100 * codel.fraction(), 2),
                 std::to_string(hull.packets)});
    if (load == 0.4) {
      hull_light = hull.fraction();
      codel_light = codel.fraction();
    }
    if (load == 2.0) {
      hull_heavy = hull.fraction();
      codel_heavy = codel.fraction();
    }
  }
  bench_util::print_rule(widths);

  const bool shape = hull_heavy > hull_light && codel_heavy >= codel_light;
  std::printf(
      "\nBoth AQMs are quiet at low load and signal congestion under\n"
      "overload: %s.  HULL marks on instantaneous phantom-queue depth;\n"
      "CoDel on persistent sojourn time — different algorithms, same\n"
      "switch, no new hardware.\n",
      shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
