// Active queue management in the data plane: HULL's phantom queue (Table 4)
// and CoDel on the LUT-extended target (§5.3's future-work direction), both
// compiled from Domino and hosted on the same NetFabric switch.
//
// The switch is a one-leaf fabric whose host port is the bottleneck: HULL
// runs at ingress (it only needs arrivals to maintain its phantom queue),
// CoDel runs at egress where the fabric hands it each packet's actual
// queueing delay.  Different algorithms, same switch, no new hardware — and
// the queue they police is the fabric's own, not a pre-computed trace.
#include <cstdio>

#include "algorithms/corpus.h"
#include "bench/bench_util.h"
#include "core/compiler.h"
#include "sim/netfabric.h"
#include "sim/tracegen.h"

namespace {

struct AqmResult {
  double mean_delay = 0;
  double hull_fraction = 0;   // of injected packets (ingress sees them all)
  double codel_fraction = 0;  // of delivered packets
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
};

AqmResult run(double load) {
  auto hull = domino::compile(algorithms::algorithm("hull").source,
                              *atoms::find_target("banzai-sub"));
  auto codel = domino::compile(algorithms::algorithm("codel").source,
                               atoms::lut_extended_target());

  netsim::NetFabricConfig fc;
  fc.num_leaves = 1;
  fc.num_spines = 0;
  fc.port.bytes_per_tick = 1000;
  fc.port.capacity_bytes = 200000;  // ~200 ticks of backlog before drop-tail
  netsim::NetFabric fabric(fc);
  fabric.host_ingress(0, hull.machine().clone(),
                      netsim::FieldBinding::resolve(hull.machine().fields(),
                                                    hull.output_map()));
  fabric.host_egress(0, codel.machine().clone(),
                     netsim::FieldBinding::resolve(codel.machine().fields(),
                                                   codel.output_map()));

  netsim::ArrivalTraceConfig tc;
  tc.num_packets = 30000;
  tc.load = load;
  tc.seed = 31337;
  for (const auto& tp : netsim::generate_arrival_trace(tc))
    fabric.inject(tp, 0, 0);
  fabric.run();

  AqmResult r;
  r.delivered = fabric.stats().delivered;
  r.dropped = fabric.stats().dropped;
  std::int64_t codel_marks = 0;
  double delay = 0;
  for (const auto& d : fabric.delivered()) {
    codel_marks += d.egress_mark;
    delay += static_cast<double>(d.queue_delay);
  }
  if (r.delivered > 0) {
    r.mean_delay = delay / static_cast<double>(r.delivered);
    // stats().ingress_marks counts HULL's decision on every injected packet,
    // including those drop-tail later discards — delivered-only counting
    // would bias the fraction down exactly under overload.
    r.hull_fraction = static_cast<double>(fabric.stats().ingress_marks) /
                      static_cast<double>(fabric.stats().injected);
    r.codel_fraction =
        static_cast<double>(codel_marks) / static_cast<double>(r.delivered);
  }
  return r;
}

}  // namespace

int main() {
  bench_util::header(
      "AQM on a NetFabric switch: HULL (banzai-sub) and CoDel "
      "(banzai-pairs-lut)");

  const std::vector<int> widths = {8, 12, 14, 14, 11, 9};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"load", "mean delay", "HULL mark %",
                                 "CoDel mark %", "delivered", "drops"});
  bench_util::print_rule(widths);

  double hull_light = -1, hull_heavy = -1;
  double codel_light = -1, codel_heavy = -1;
  for (double load : {0.4, 0.8, 1.2, 2.0}) {
    const AqmResult r = run(load);
    bench_util::print_row(
        widths,
        {bench_util::fmt(load, 1), bench_util::fmt(r.mean_delay, 1),
         bench_util::fmt(100 * r.hull_fraction, 2),
         bench_util::fmt(100 * r.codel_fraction, 2),
         std::to_string(r.delivered), std::to_string(r.dropped)});
    if (load == 0.4) {
      hull_light = r.hull_fraction;
      codel_light = r.codel_fraction;
    }
    if (load == 2.0) {
      hull_heavy = r.hull_fraction;
      codel_heavy = r.codel_fraction;
    }
  }
  bench_util::print_rule(widths);

  const bool shape = hull_heavy > hull_light && codel_heavy >= codel_light;
  std::printf(
      "\nBoth AQMs are quiet at low load and signal congestion under\n"
      "overload: %s.  HULL marks on instantaneous phantom-queue depth;\n"
      "CoDel on persistent sojourn time measured by the fabric itself —\n"
      "different algorithms, same switch, no new hardware.\n",
      shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
