// CONGA-style load balancing on a leaf-spine fabric (§5.3's motivating
// pair-update example), now running *inside the network*: every leaf switch
// of a NetFabric hosts the CONGA transaction compiled onto the Pairs target.
//
// The loop is closed — no synthetic churn.  Each injected packet carries a
// rotating probe of its ingress leaf's own uplink backlog into the program,
// each delivery feeds back the worst queue the packet actually saw on its
// path, and the program's `best_path_now` output picks the spine for the next
// packet.  The baseline disables the machines, leaving flow-hash ECMP: every
// flow pinned to a random path, which is exactly where Zipf-heavy flows
// collide.
#include <cstdio>

#include <algorithm>
#include <vector>

#include "algorithms/corpus.h"
#include "bench/bench_util.h"
#include "core/compiler.h"
#include "sim/netfabric.h"
#include "sim/tracegen.h"

namespace {

constexpr int kLeaves = 8;
constexpr int kSpines = 8;

struct Spread {
  double max_util = 0;   // hottest uplink, cumulative bytes
  double imbalance = 0;  // max / mean over all uplinks
  std::int64_t dropped = 0;
  std::int64_t feedback = 0;
};

std::vector<netsim::TracePacket> make_trace(std::uint64_t seed) {
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 20000;
  cfg.num_flows = 48;
  cfg.zipf_skew = 1.25;
  cfg.seed = seed;
  auto trace = netsim::generate_flow_trace(cfg);
  netsim::sort_by_arrival(trace);
  return trace;
}

Spread run(bool use_conga, const std::vector<netsim::TracePacket>& trace,
           std::uint64_t seed) {
  netsim::NetFabricConfig fc;
  fc.num_leaves = kLeaves;
  fc.num_spines = kSpines;
  fc.seed = seed;
  fc.port.bytes_per_tick = 250;
  fc.port.capacity_bytes = 50000;
  fc.port.ecn_threshold_bytes = 40000;
  fc.link_latency = 2;
  fc.feedback_latency = 2;
  netsim::NetFabric fabric(fc);

  if (use_conga) {
    auto compiled = domino::compile(algorithms::algorithm("conga").source,
                                    *atoms::find_target("banzai-pairs"));
    const auto binding = netsim::FieldBinding::resolve(
        compiled.machine().fields(), compiled.output_map());
    for (int l = 0; l < kLeaves; ++l)
      fabric.host_ingress(l, compiled.machine().clone(), binding);
  }

  for (const auto& tp : trace) {
    const auto [src, dst] = netsim::flow_endpoints(tp.flow_id, kLeaves, 0x1eaf);
    fabric.inject(tp, src, dst);
  }
  fabric.run();

  Spread s;
  double total = 0;
  for (int l = 0; l < kLeaves; ++l)
    for (int p = 0; p < kSpines; ++p) {
      const auto u = static_cast<double>(fabric.uplink(l, p).accepted_bytes());
      total += u;
      s.max_util = std::max(s.max_util, u);
    }
  const double mean = total / (kLeaves * kSpines);
  s.imbalance = mean > 0 ? s.max_util / mean : 0;
  s.dropped = fabric.stats().dropped;
  s.feedback = fabric.stats().feedback_packets;
  return s;
}

}  // namespace

int main() {
  bench_util::header(
      "CONGA inside a NetFabric leaf-spine: closed-loop routing vs ECMP");
  std::printf(
      "\n%dx%d fabric, every leaf runs the compiled CONGA transaction;\n"
      "packets probe local uplinks, deliveries feed back path congestion.\n",
      kLeaves, kSpines);
  const std::vector<int> widths = {6, 14, 12, 14, 12, 10, 10};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"seed", "conga max", "conga m/m",
                                 "random max", "random m/m", "c drops",
                                 "r drops"});
  bench_util::print_rule(widths);
  int wins = 0, trials = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto trace = make_trace(seed);
    const Spread conga = run(true, trace, seed);
    const Spread random = run(false, trace, seed);
    bench_util::print_row(
        widths, {std::to_string(seed), bench_util::fmt(conga.max_util, 0),
                 bench_util::fmt(conga.imbalance, 2),
                 bench_util::fmt(random.max_util, 0),
                 bench_util::fmt(random.imbalance, 2),
                 std::to_string(conga.dropped),
                 std::to_string(random.dropped)});
    ++trials;
    if (conga.max_util < random.max_util) ++wins;
  }
  bench_util::print_rule(widths);
  std::printf(
      "\ncongestion-aware routing kept the hottest path cooler in %d/%d\n"
      "trials.  The in-switch Pairs atom makes the best-path update atomic\n"
      "against concurrent feedback (Section 5.3); the fabric's own queue\n"
      "backlog is the only congestion signal.\n",
      wins, trials);
  return wins * 2 > trials ? 0 : 1;
}
