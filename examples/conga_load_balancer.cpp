// CONGA-style load balancing on a miniature leaf-spine fabric (§5.3's
// motivating pair-update example, the workload its intro describes).
//
// The switch runs the CONGA transaction compiled onto the Pairs target: each
// incoming feedback packet carries (src leaf, path id, measured utilization)
// and the atom atomically maintains best_path/best_path_util per destination.
// New flowlets are routed on the switch's current best path; we compare the
// resulting load spread against random path selection.
#include <cstdio>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "bench/bench_util.h"
#include "core/compiler.h"
#include "sim/fabric.h"
#include "sim/rng.h"

namespace {

struct Spread {
  double max_util = 0;
  double imbalance = 0;  // max/mean utilization at the end
};

Spread run(bool use_conga, int rounds, std::uint64_t seed) {
  const int kLeaves = 8, kPaths = 8;
  netsim::LeafSpineFabric fabric(kLeaves, kPaths, seed);
  netsim::Xoshiro256 rng(seed ^ 0x777);

  auto compiled = domino::compile(algorithms::algorithm("conga").source,
                                  *atoms::find_target("banzai-pairs"));
  auto& machine = compiled.machine();
  const auto& f = machine.fields();
  const auto best_path_out =
      f.id_of(compiled.output_map().at("best_path_now"));

  for (int r = 0; r < rounds; ++r) {
    const int leaf = static_cast<int>(rng.below(kLeaves));

    // CONGA's feedback loop: every packet piggybacks the utilization of the
    // path it actually traversed.  First, a discovery probe from a random
    // path (fabric packets arrive over all paths), ...
    const int probe_path = static_cast<int>(rng.below(kPaths));
    banzai::Packet probe(f.size());
    probe.set(f.id_of("src"), leaf);
    probe.set(f.id_of("path_id"), probe_path);
    probe.set(f.id_of("util"), fabric.utilization(leaf, probe_path));
    probe = machine.process(probe);

    // ... then route a new ~20 KB flowlet on the switch's current best path.
    int path;
    if (use_conga) {
      path = probe.get(best_path_out) % kPaths;
    } else {
      path = static_cast<int>(rng.below(kPaths));
    }
    const std::int32_t flowlet_bytes =
        8000 + static_cast<std::int32_t>(rng.below(16000));
    const std::int32_t new_util = fabric.add_load(leaf, path, flowlet_bytes);

    // The flowlet's own packets feed back the chosen path's new utilization,
    // so the switch notices when its favourite path degrades (the Pairs
    // atom's "update utilization alone if it changes" branch).
    banzai::Packet fb(f.size());
    fb.set(f.id_of("src"), leaf);
    fb.set(f.id_of("path_id"), path);
    fb.set(f.id_of("util"), new_util);
    machine.process(fb);
  }

  Spread s;
  double total = 0;
  for (int l = 0; l < kLeaves; ++l)
    for (int p = 0; p < kPaths; ++p) {
      const double u = fabric.utilization(l, p);
      total += u;
      s.max_util = std::max(s.max_util, u);
    }
  const double mean = total / (kLeaves * kPaths);
  s.imbalance = mean > 0 ? s.max_util / mean : 0;
  return s;
}

}  // namespace

int main() {
  bench_util::header(
      "CONGA on a leaf-spine fabric: congestion-aware vs random routing");
  const std::vector<int> widths = {10, 16, 16, 16, 16};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"seed", "conga max", "conga max/mean",
                                 "random max", "random max/mean"});
  bench_util::print_rule(widths);
  int wins = 0, trials = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Spread conga = run(true, 4000, seed);
    const Spread random = run(false, 4000, seed);
    bench_util::print_row(
        widths, {std::to_string(seed), bench_util::fmt(conga.max_util, 0),
                 bench_util::fmt(conga.imbalance, 2),
                 bench_util::fmt(random.max_util, 0),
                 bench_util::fmt(random.imbalance, 2)});
    ++trials;
    if (conga.imbalance < random.imbalance) ++wins;
  }
  bench_util::print_rule(widths);
  std::printf(
      "\ncongestion-aware routing achieved better balance in %d/%d trials\n"
      "(the in-switch Pairs atom is what makes the best-path update atomic\n"
      "against concurrent feedback — Section 5.3).\n",
      wins, trials);
  return wins * 2 > trials ? 0 : 1;
}
